"""Trace-driven cost-model recalibration: calibration as a closed loop.

Offline calibration (:mod:`repro.sim.calibration`) fits the analytic
model against dedicated microbenchmarks.  This module closes the loop
the paper leaves open: observed *training* execution — the compute spans
a trace records, with their workload attribution — is fitted back into
the same efficiency factors, so the planner's cost model keeps learning
from every traced iteration without running a separate benchmark grid.

The fit subtracts each span's recorded memory-strategy overhead
(``extra_ms``: recomputation, prefetch) before comparing against the
base stage cost, and uses forward spans only — backward latency is a
fixed ratio of forward in the roofline model, so forward observations
determine every fitted factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.devices import GpuSpec
from repro.models.config import ModalityModuleSpec
from repro.sim.calibration import fit_efficiency_factors
from repro.sim.costmodel import CostModel
from repro.trace.events import Trace


@dataclass(frozen=True)
class TraceSample:
    """One observed stage execution usable for fitting."""

    module: str
    layers: int
    instances: int
    seq: int
    context: int
    observed_ms: float


@dataclass
class TraceCalibrationReport:
    """Outcome of one trace-driven recalibration."""

    calibrated: CostModel
    samples: int
    distinct_shapes: int
    mean_abs_error_before: float
    mean_abs_error_after: float

    @property
    def accuracy_after(self) -> float:
        return 1.0 - self.mean_abs_error_after

    @property
    def improved(self) -> bool:
        return self.mean_abs_error_after < self.mean_abs_error_before

    def describe(self) -> str:
        return (
            f"recalibrated from {self.samples} spans "
            f"({self.distinct_shapes} shapes): mean abs error "
            f"{self.mean_abs_error_before * 100:.1f}% -> "
            f"{self.mean_abs_error_after * 100:.1f}% "
            f"(accuracy {self.accuracy_after * 100:.1f}%)"
        )


def samples_from_traces(
    traces: Iterable[Trace],
    min_duration_ms: float = 0.0,
) -> List[TraceSample]:
    """Extract fit-able forward compute observations from traces.

    A span qualifies when it carries the workload attribution the graph
    emitter attaches (``layers``/``instances``/``seq``) and a full
    latency share; the strategy's ``extra_ms`` is subtracted so the
    observation reflects the base stage cost.
    """
    samples: List[TraceSample] = []
    for trace in traces:
        for span in trace.compute_spans():
            if span.direction != "fw" or not span.module:
                continue
            attrs = span.attrs
            layers = int(attrs.get("layers", 0))
            instances = int(attrs.get("instances", 0))
            seq = int(attrs.get("seq", 0))
            if layers <= 0 or instances <= 0 or seq <= 0:
                continue
            if float(attrs.get("share", 1.0)) != 1.0:
                continue
            observed = span.duration_ms - float(attrs.get("extra_ms", 0.0))
            if observed <= min_duration_ms:
                continue
            samples.append(TraceSample(
                module=span.module,
                layers=layers,
                instances=instances,
                seq=seq,
                context=int(attrs.get("context", 0)),
                observed_ms=observed,
            ))
    return samples


def _collapse_shapes(samples: Sequence[TraceSample]):
    """Mean observation per distinct workload shape (denoises jitter)."""
    by_shape: Dict[Tuple, List[float]] = {}
    for sample in samples:
        shape = (sample.module, sample.layers, sample.instances,
                 sample.seq, sample.context)
        by_shape.setdefault(shape, []).append(sample.observed_ms)
    shapes = sorted(by_shape)
    observed = np.array([np.mean(by_shape[s]) for s in shapes])
    return shapes, observed


def prediction_error(
    samples: Sequence[TraceSample],
    model: CostModel,
    device: GpuSpec,
    specs: Dict[str, ModalityModuleSpec],
    tp: int = 1,
) -> float:
    """Mean relative |predicted - observed| of ``model`` on ``samples``.

    The same per-shape error the coordinate-descent refit minimises —
    exposed so the recalibration loop can score a candidate model on a
    *held-out* validation window it never fitted (and roll back refits
    that only look good on their own fit window).

    Raises:
        ValueError: when ``samples`` is empty.
    """
    if not samples:
        raise ValueError("cannot score a model on zero samples")
    shapes, observed = _collapse_shapes(samples)
    predicted = np.array([
        model.stage_cost(device, specs[module], layers, instances, seq,
                         tp=tp, context=context).forward_ms
        for module, layers, instances, seq, context in shapes
    ])
    return float(np.mean(np.abs(predicted - observed) / observed))


def recalibrate_from_traces(
    traces: Sequence[Trace],
    base: CostModel,
    device: GpuSpec,
    specs: Dict[str, ModalityModuleSpec],
    tp: int = 1,
    sweeps: int = 3,
    samples: Optional[List[TraceSample]] = None,
) -> TraceCalibrationReport:
    """Fit ``base``'s efficiency factors to observed span durations.

    Args:
        traces: Traces of executed iterations (simulator or engine,
            enriched with graph attribution).
        base: The analytic model to recalibrate.
        device: GPU the traced execution ran on.
        specs: Modality module specs by name (``span.module`` values).
        tp: Tensor-parallel degree of the traced execution.
        sweeps: Coordinate-descent sweeps over the factor grids.
        samples: Pre-extracted observations; when given, ``traces`` is
            not re-scanned (the service's recal loop extracts once to
            gate on sample count, then fits the same list).

    Raises:
        ValueError: if the traces contain no fit-able forward spans or
            reference an unknown module.
    """
    if samples is None:
        samples = samples_from_traces(traces)
    if not samples:
        raise ValueError("traces contain no fit-able forward compute spans")
    unknown = sorted({s.module for s in samples} - set(specs))
    if unknown:
        raise ValueError(f"traces reference unknown modules: {unknown}")

    # Collapse repeats of one shape into its mean observation — a
    # dynamic-workload trace repeats few distinct shapes many times, and
    # averaging both denoises jitter and makes the descent O(shapes).
    shapes, observed = _collapse_shapes(samples)

    def predict(model: CostModel) -> np.ndarray:
        return np.array([
            model.stage_cost(device, specs[module], layers, instances, seq,
                             tp=tp, context=context).forward_ms
            for module, layers, instances, seq, context in shapes
        ])

    def error(model: CostModel) -> float:
        return float(np.mean(np.abs(predict(model) - observed) / observed))

    before_err = error(base)
    best, best_err = fit_efficiency_factors(base, error, sweeps=sweeps)
    return TraceCalibrationReport(
        calibrated=best,
        samples=len(samples),
        distinct_shapes=len(shapes),
        mean_abs_error_before=before_err,
        mean_abs_error_after=best_err,
    )


def recalibrate_from_trace(
    trace: Trace,
    base: CostModel,
    device: GpuSpec,
    specs: Dict[str, ModalityModuleSpec],
    tp: Optional[int] = None,
    sweeps: int = 3,
) -> TraceCalibrationReport:
    """Single-trace convenience wrapper; ``tp`` defaults to the trace's."""
    return recalibrate_from_traces(
        [trace], base, device, specs,
        tp=trace.meta.tp if tp is None else tp,
        sweeps=sweeps,
    )


def measure_reference_traces(
    arch,
    plan,
    batches,
    cluster,
    parallel,
    reference,
    partitioner=None,
    label: str = "reference",
) -> List[Trace]:
    """Trace iterations "measured" on the reference system.

    The measurement protocol shared by the CLI's ``trace recalibrate``
    and the trace benchmark: every batch's graph is built with the
    *reference* (hidden-truth) cost model, executed in natural uid order
    per rank, and simulated with the reference's per-stage measurement
    jitter — so observed span durations carry both the hidden factors
    and realistic run-to-run noise.
    """
    from repro.core.graphbuilder import build_iteration_graph
    from repro.sim.pipeline import simulate_pipeline
    from repro.trace.builders import trace_from_sim

    traces: List[Trace] = []
    for batch in batches:
        graph = build_iteration_graph(arch, plan, batch, cluster, parallel,
                                      reference, partitioner=partitioner)
        order = [sorted(s.uid for s in graph.stages_on_rank(r))
                 for r in range(graph.num_ranks)]
        sim = simulate_pipeline(graph, order, cluster, parallel, reference,
                                jitter=reference.jitter)
        traces.append(trace_from_sim(graph, sim, cluster, parallel,
                                     reference, label=label))
    return traces
