"""Shared fixtures: tiny models and clusters that keep tests fast.

The tiny specs exercise every code path (multi-modality, GQA, gated and
plain MLPs, cross-attention) at a fraction of the real models' size.
"""

from __future__ import annotations

import pytest

from repro.cluster.devices import GPU_H800_80G
from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.graphbuilder import build_iteration_graph
from repro.core.partitioner import ModalityPartitioner
from repro.core.planner import reference_microbatch
from repro.data.workload import t2v_workload, vlm_workload
from repro.models.config import Modality, ModalityModuleSpec, ModuleRole
from repro.models.lmm import build_t2v, build_unimodal, build_vlm
from repro.sim.costmodel import CostModel

TINY_VIT = ModalityModuleSpec(
    name="tiny-vit",
    role=ModuleRole.ENCODER,
    modality=Modality.IMAGE,
    num_layers=8,
    hidden_size=256,
    ffn_hidden_size=1024,
    num_attention_heads=4,
    num_query_groups=4,
    gated_mlp=False,
)

TINY_LM = ModalityModuleSpec(
    name="tiny-lm",
    role=ModuleRole.BACKBONE,
    modality=Modality.TEXT,
    num_layers=8,
    hidden_size=512,
    ffn_hidden_size=1536,
    num_attention_heads=8,
    num_query_groups=2,
    gated_mlp=True,
    vocab_size=32000,
)

TINY_DIT = ModalityModuleSpec(
    name="tiny-dit",
    role=ModuleRole.DECODER,
    modality=Modality.VIDEO,
    num_layers=8,
    hidden_size=384,
    ffn_hidden_size=1024,
    num_attention_heads=6,
    num_query_groups=6,
    gated_mlp=False,
    cross_attention=True,
)


@pytest.fixture
def tiny_vlm():
    return build_vlm(TINY_VIT, TINY_LM, "tiny-vlm")


@pytest.fixture
def tiny_t2v():
    return build_t2v(TINY_LM, TINY_DIT, "tiny-t2v")


@pytest.fixture
def tiny_lm_arch():
    return build_unimodal(TINY_LM, "tiny-lm-only")


@pytest.fixture
def small_cluster():
    return ClusterSpec(gpu=GPU_H800_80G, gpus_per_node=4, num_nodes=1,
                       cpu_cores_per_node=16)


@pytest.fixture
def parallel2():
    return ParallelConfig(dp=1, tp=1, pp=2)


@pytest.fixture
def parallel4():
    return ParallelConfig(dp=1, tp=1, pp=4)


@pytest.fixture
def cost_model():
    return CostModel()


@pytest.fixture
def vlm_setup(tiny_vlm, small_cluster, parallel2, cost_model):
    """(arch, plan, partitioner) for the tiny VLM on 2 pipeline ranks."""
    partitioner = ModalityPartitioner(
        tiny_vlm, small_cluster, parallel2, cost_model
    )
    plan = partitioner.plan(reference_microbatch("vlm"))
    return tiny_vlm, plan, partitioner


@pytest.fixture
def vlm_graph(vlm_setup, small_cluster, parallel2, cost_model):
    """A 2-microbatch tiny-VLM iteration graph."""
    arch, plan, partitioner = vlm_setup
    batch = vlm_workload(2, seed=1).next_batch()
    return build_iteration_graph(
        arch, plan, batch, small_cluster, parallel2, cost_model,
        partitioner=partitioner,
    )


@pytest.fixture
def t2v_graph(tiny_t2v, small_cluster, parallel2, cost_model):
    """A 2-microbatch tiny-T2V iteration graph."""
    partitioner = ModalityPartitioner(
        tiny_t2v, small_cluster, parallel2, cost_model
    )
    plan = partitioner.plan(reference_microbatch("t2v"))
    batch = t2v_workload(2, seed=1).next_batch()
    return build_iteration_graph(
        tiny_t2v, plan, batch, small_cluster, parallel2, cost_model,
        partitioner=partitioner,
    )
