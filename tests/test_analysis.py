"""Tests for the workload-analysis utilities."""

import pytest

from repro.data.analysis import (
    analyze_workload,
    flatten_batches,
    imbalance_gain_estimate,
)
from repro.data.packing import controlled_vlm_microbatch
from repro.data.batching import GlobalBatch
from repro.data.workload import t2v_workload, vlm_workload
from repro.models.lmm import build_vlm
from tests.conftest import TINY_LM, TINY_VIT


@pytest.fixture
def arch():
    return build_vlm(TINY_VIT, TINY_LM)


class TestAnalyzeWorkload:
    def test_empty_rejected(self, arch):
        with pytest.raises(ValueError):
            analyze_workload(arch, [])

    def test_modules_covered(self, arch):
        mbs = vlm_workload(4, seed=0).next_batch().microbatches
        report = analyze_workload(arch, mbs)
        assert {m.module for m in report.modules} == {"tiny-vit", "tiny-lm"}
        assert report.microbatches == 4

    def test_uniform_batches_have_no_spread(self, arch):
        mbs = [controlled_vlm_microbatch(i, 10) for i in range(5)]
        report = analyze_workload(arch, mbs)
        assert report.total_spread == pytest.approx(1.0)
        for m in report.modules:
            assert m.cv == pytest.approx(0.0, abs=1e-9)

    def test_variable_batches_have_spread(self, arch):
        mbs = [controlled_vlm_microbatch(0, 2),
               controlled_vlm_microbatch(1, 40)]
        report = analyze_workload(arch, mbs)
        assert report.total_spread > 1.2
        vit = next(m for m in report.modules if m.module == "tiny-vit")
        assert vit.spread > 10

    def test_summary_readable(self, arch):
        mbs = vlm_workload(3, seed=1).next_batch().microbatches
        text = analyze_workload(arch, mbs).summary()
        assert "spread" in text and "tiny-vit" in text

    def test_t2v_workload(self, tiny_t2v):
        mbs = t2v_workload(4, seed=0).next_batch().microbatches
        report = analyze_workload(tiny_t2v, mbs)
        dit = next(m for m in report.modules if m.module == "tiny-dit")
        assert dit.mean_tflops > 0

    def test_zero_image_batches_handled(self, arch):
        mbs = [controlled_vlm_microbatch(i, 0) for i in range(3)]
        report = analyze_workload(arch, mbs)
        vit = next(m for m in report.modules if m.module == "tiny-vit")
        assert vit.mean_tflops == 0.0
        assert report.total_spread == pytest.approx(1.0)


class TestHelpers:
    def test_flatten(self):
        batches = vlm_workload(3, seed=0).batches(2)
        flat = flatten_batches(batches)
        assert len(flat) == 6

    def test_gain_estimate_at_least_one(self, arch):
        mbs = vlm_workload(6, seed=2).next_batch().microbatches
        report = analyze_workload(arch, mbs)
        assert imbalance_gain_estimate(report) >= 1.0

    def test_gain_estimate_grows_with_variance(self, arch):
        uniform = analyze_workload(
            arch, [controlled_vlm_microbatch(i, 10) for i in range(4)])
        varied = analyze_workload(
            arch, [controlled_vlm_microbatch(0, 1),
                   controlled_vlm_microbatch(1, 45),
                   controlled_vlm_microbatch(2, 10),
                   controlled_vlm_microbatch(3, 20)])
        assert (imbalance_gain_estimate(varied)
                > imbalance_gain_estimate(uniform))
