"""Tests for the layout auto-tuner and balanced packing."""

import numpy as np
import pytest

from repro.cluster.devices import GPU_H800_80G
from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.autotuner import (
    LayoutCandidate,
    enumerate_layouts,
    evaluate_layout,
    tune_layout,
)
from repro.data.datasets import mixture_image_dataset
from repro.data.packing import pack_image_text, pack_image_text_balanced
from repro.data.workload import vlm_workload
from repro.models.lmm import build_vlm
from repro.sim.costmodel import CostModel
from tests.conftest import TINY_LM, TINY_VIT


@pytest.fixture
def cluster8():
    return ClusterSpec(gpu=GPU_H800_80G, gpus_per_node=8, num_nodes=1)


class TestEnumerateLayouts:
    def test_layouts_fill_world(self, cluster8):
        for layout in enumerate_layouts(cluster8):
            assert layout.world_size == 8

    def test_tp_within_node(self, cluster8):
        for layout in enumerate_layouts(cluster8):
            assert layout.tp <= 8

    def test_min_pp_filter(self, cluster8):
        layouts = enumerate_layouts(cluster8, min_pp=2)
        assert all(l.pp >= 2 for l in layouts)
        assert layouts  # still non-empty

    def test_covers_known_layouts(self, cluster8):
        described = {l.describe() for l in enumerate_layouts(cluster8)}
        assert "DP1,TP2,PP4" in described
        assert "DP2,TP1,PP4" in described


class TestEvaluateAndTune:
    def test_evaluate_layout(self, tiny_vlm, cluster8, cost_model):
        parallel = ParallelConfig(dp=1, tp=1, pp=2)
        batch = vlm_workload(4, seed=0).next_batch()
        cand = evaluate_layout(tiny_vlm, cluster8, parallel, batch, cost_model)
        assert cand.iteration_ms > 0
        assert 0 < cand.mfu < 1
        assert cand.fits_memory
        assert "MFU" in cand.describe()

    def test_tune_sorted_best_first(self, tiny_vlm, cluster8, cost_model):
        results = tune_layout(tiny_vlm, cluster8, global_microbatches=8,
                              cost_model=cost_model, min_pp=1)
        assert len(results) >= 3
        feasible = [c for c in results if c.fits_memory]
        mfus = [c.mfu for c in feasible]
        assert mfus == sorted(mfus, reverse=True)

    def test_dp_trades_against_pp(self, tiny_vlm, cluster8, cost_model):
        """High-DP layouts get fewer per-replica microbatches; the tuner
        must reflect that (no layout gets free parallelism)."""
        results = tune_layout(tiny_vlm, cluster8, global_microbatches=8,
                              cost_model=cost_model, min_pp=1)
        by_layout = {c.parallel.describe(): c for c in results}
        assert len(by_layout) == len(results)  # all distinct

    def test_search_budget_improves_or_ties(self, tiny_vlm, cluster8,
                                            cost_model):
        parallel = ParallelConfig(dp=1, tp=1, pp=4)
        batch = vlm_workload(6, seed=1).next_batch()
        plain = evaluate_layout(tiny_vlm, cluster8, parallel, batch,
                                cost_model, search_budget=0)
        searched = evaluate_layout(tiny_vlm, cluster8, parallel, batch,
                                   cost_model, search_budget=20)
        assert searched.iteration_ms <= plain.iteration_ms * 1.02


class TestBalancedPacking:
    def test_reduces_image_variance(self):
        ds = mixture_image_dataset(seed=4)
        docs = ds.take(3000)
        greedy = pack_image_text(iter(docs), 8)
        balanced = pack_image_text_balanced(iter(docs), 8)
        var_greedy = np.var([m.num_images for m in greedy])
        var_balanced = np.var([m.num_images for m in balanced])
        assert var_balanced <= var_greedy

    def test_respects_capacity(self):
        ds = mixture_image_dataset(seed=4)
        batch = pack_image_text_balanced(iter(ds.take(2000)), 6)
        from repro.data import constants

        for mb in batch:
            assert mb.num_images <= constants.MAX_IMAGES_PER_MICROBATCH
            assert mb.lm_sequence_tokens == constants.CONTEXT_LENGTH

    def test_insufficient_against_modality_imbalance(self):
        """The paper's section 2.3 argument: balanced packing narrows
        cross-batch variance but leaves the inter-modality skew intact —
        the ViT still sees wildly different load than the LM."""
        from repro.data.analysis import analyze_workload

        arch = build_vlm(TINY_VIT, TINY_LM)
        ds = mixture_image_dataset(seed=4)
        docs = ds.take(3000)
        balanced = pack_image_text_balanced(iter(docs), 8)
        report = analyze_workload(arch, balanced.microbatches)
        assert report.modality_skew > 1.05  # imbalance survives packing
