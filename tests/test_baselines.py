"""Tests for the baseline systems (Megatron, nnScaler*, Optimus, FSDP)."""

import pytest

from repro.baselines.flatpipe import (
    flat_layer_list,
    partition_by_weight,
)
from repro.baselines.fsdp import fsdp_iteration_ms
from repro.baselines.megatron import megatron_partition, megatron_schedule
from repro.baselines.nnscaler import NnScalerPlan
from repro.baselines.optimus import optimus_schedule
from repro.core.schedule import validate_schedule
from repro.data.workload import t2v_workload, vlm_workload


@pytest.fixture
def vlm_batch():
    return vlm_workload(4, seed=2).next_batch()


class TestFlatPartition:
    def test_layer_list_order(self, tiny_vlm):
        layers = flat_layer_list(tiny_vlm)
        assert len(layers) == 16
        assert layers[0] == "tiny-vit" and layers[-1] == "tiny-lm"

    def test_partition_covers_layers(self, tiny_vlm):
        weight = {"tiny-vit": 1.0, "tiny-lm": 2.0}
        partition = partition_by_weight(tiny_vlm, 2, 2, weight)
        total = sum(s.num_layers for chunk in partition.chunks for s in chunk)
        assert total == 16
        assert len(partition.chunks) == 4

    def test_balanced_weights(self, tiny_vlm):
        weight = {"tiny-vit": 1.0, "tiny-lm": 1.0}
        partition = partition_by_weight(tiny_vlm, 4, 1, weight)
        sizes = [sum(s.num_layers for s in chunk) for chunk in partition.chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_too_many_chunks_rejected(self, tiny_vlm):
        with pytest.raises(ValueError):
            partition_by_weight(tiny_vlm, 17, 1, {"tiny-vit": 1, "tiny-lm": 1})

    def test_chunks_can_mix_modalities(self, tiny_vlm):
        """Flat partitioning mixes ViT and LM layers inside one chunk —
        the intra-segment imbalance DIP removes.  With 3 ranks the 8+8
        layer stack cannot split on the module boundary."""
        weight = {"tiny-vit": 1.0, "tiny-lm": 1.0}
        partition = partition_by_weight(tiny_vlm, 3, 1, weight)
        mixed = any(len(chunk) > 1 for chunk in partition.chunks)
        assert mixed


class TestMegatron:
    def test_schedule_valid(self, tiny_vlm, vlm_batch, small_cluster,
                            parallel2, cost_model):
        schedule = megatron_schedule(tiny_vlm, vlm_batch, small_cluster,
                                     parallel2, cost_model)
        assert validate_schedule(schedule.graph, schedule.order) == []
        assert schedule.total_ms > 0

    def test_interleaved_vpp_when_divisible(self, tiny_vlm, small_cluster,
                                            parallel2, cost_model):
        batch = vlm_workload(4, seed=2).next_batch()  # 4 mb % 2 ranks == 0
        schedule = megatron_schedule(tiny_vlm, batch, small_cluster,
                                     parallel2, cost_model, virtual=2)
        assert validate_schedule(schedule.graph, schedule.order) == []

    def test_vpp_falls_back_on_indivisible(self, tiny_vlm, small_cluster,
                                           parallel2, cost_model):
        batch = vlm_workload(3, seed=2).next_batch()  # 3 % 2 != 0
        schedule = megatron_schedule(tiny_vlm, batch, small_cluster,
                                     parallel2, cost_model, virtual=2)
        assert validate_schedule(schedule.graph, schedule.order) == []

    def test_partition_parameter_balanced(self, tiny_vlm, parallel2):
        partition = megatron_partition(tiny_vlm, parallel2, virtual=1)
        weights = []
        for chunk in partition.chunks:
            total = 0.0
            for s in chunk:
                total += s.num_layers * tiny_vlm.binding(s.module).spec.layer_parameters()
            weights.append(total)
        assert max(weights) / min(weights) < 2.0

    def test_same_schedule_structure_every_batch(self, tiny_vlm, small_cluster,
                                                 parallel2, cost_model):
        """Megatron is static: order pattern identical across batches."""
        stream = vlm_workload(4, seed=5)
        s1 = megatron_schedule(tiny_vlm, stream.next_batch(), small_cluster,
                               parallel2, cost_model)
        s2 = megatron_schedule(tiny_vlm, stream.next_batch(), small_cluster,
                               parallel2, cost_model)
        assert s1.order == s2.order  # same uids: same graph shape
        assert s1.total_ms != pytest.approx(s2.total_ms)  # latencies differ


class TestNnScaler:
    def test_requires_fit(self, tiny_vlm, vlm_batch, small_cluster, parallel2,
                          cost_model):
        plan = NnScalerPlan(tiny_vlm, small_cluster, parallel2, cost_model)
        with pytest.raises((RuntimeError, ValueError)):
            plan.schedule(vlm_batch)

    def test_rejects_mismatched_microbatch_count(self, tiny_vlm, small_cluster,
                                                 parallel2, cost_model):
        plan = NnScalerPlan(tiny_vlm, small_cluster, parallel2, cost_model)
        plan.fit(vlm_workload(4, seed=1).next_batch())
        with pytest.raises(ValueError, match="microbatches"):
            plan.schedule(vlm_workload(3, seed=1).next_batch())

    def test_static_plan_reused(self, tiny_vlm, small_cluster, parallel2,
                                cost_model):
        stream = vlm_workload(4, seed=3)
        representative = stream.next_batch()
        plan = NnScalerPlan(tiny_vlm, small_cluster, parallel2, cost_model)
        plan.fit(representative)
        partition_before = plan.partition
        s1 = plan.schedule(stream.next_batch())
        s2 = plan.schedule(stream.next_batch())
        assert plan.partition is partition_before  # never regenerated
        assert validate_schedule(s1.graph, s1.order) == []
        assert validate_schedule(s2.graph, s2.order) == []


class TestOptimus:
    def test_rejects_t2v(self, tiny_t2v, small_cluster, parallel2, cost_model):
        batch = t2v_workload(2, seed=0).next_batch()
        with pytest.raises(ValueError, match="diffusion"):
            optimus_schedule(tiny_t2v, batch, small_cluster, parallel2,
                             cost_model)

    def test_schedule_valid(self, tiny_vlm, vlm_batch, small_cluster,
                            parallel2, cost_model):
        schedule = optimus_schedule(tiny_vlm, vlm_batch, small_cluster,
                                    parallel2, cost_model)
        assert validate_schedule(schedule.graph, schedule.order) == []

    def test_encoder_forwards_lead(self, tiny_vlm, vlm_batch, small_cluster,
                                   parallel2, cost_model):
        """Coarse-grained scheduling: rank-0 runs every encoder forward
        before the first backbone backward."""
        from repro.core.stages import Direction

        schedule = optimus_schedule(tiny_vlm, vlm_batch, small_cluster,
                                    parallel2, cost_model)
        graph = schedule.graph
        order0 = schedule.order[0]
        first_lm_bw = next(
            i for i, uid in enumerate(order0)
            if graph.stages[uid].key.module == "tiny-lm"
            and graph.stages[uid].direction is Direction.BACKWARD
        )
        vit_fw_positions = [
            i for i, uid in enumerate(order0)
            if graph.stages[uid].key.module == "tiny-vit"
            and graph.stages[uid].direction is Direction.FORWARD
        ]
        assert all(p < first_lm_bw for p in vit_fw_positions)


class TestFsdp:
    def test_positive_time(self, tiny_vlm, vlm_batch, small_cluster, cost_model):
        ms = fsdp_iteration_ms(tiny_vlm, vlm_batch, small_cluster, cost_model,
                               world_size=4)
        assert ms > 0

    def test_more_gpus_faster_until_comm_bound(self, tiny_vlm, vlm_batch,
                                               small_cluster, cost_model):
        t1 = fsdp_iteration_ms(tiny_vlm, vlm_batch, small_cluster, cost_model,
                               world_size=1)
        t4 = fsdp_iteration_ms(tiny_vlm, vlm_batch, small_cluster, cost_model,
                               world_size=4)
        assert t4 < t1

    def test_invalid_world_size(self, tiny_vlm, vlm_batch, small_cluster,
                                cost_model):
        with pytest.raises(ValueError):
            fsdp_iteration_ms(tiny_vlm, vlm_batch, small_cluster, cost_model,
                              world_size=0)
