"""The shared on-disk plan-cache tier (src/repro/core/cachetier.py).

Two groups of guarantees:

* **Tier mechanics** — content-addressed one-file-per-digest layout,
  atomic writes, tolerant reads (corrupt / stale / foreign files are
  misses, never crashes), context invalidation reaching disk.
* **Tier parity** — the serving tier is an implementation detail: a
  disk-served hit yields the bit-identical plan, the identical
  makespan, and the same hit accounting as a memory-served hit; only
  the ``tier`` label may differ.
"""

import json
import os

import pytest

from repro.core.cachetier import (
    TIER_FILE_FORMAT,
    TIER_FILE_VERSION,
    TIER_SUFFIX,
    DiskCacheTier,
)
from repro.core.plancache import PlanCache, atomic_write_json, plan_to_dict
from repro.core.planner import OnlinePlanner
from repro.core.searcher import ScheduleSearcher
from repro.core.signature import compute_signature
from repro.data.batching import GlobalBatch
from repro.data.packing import controlled_vlm_microbatch


def controlled_batch(image_counts, start_index=0):
    return GlobalBatch([
        controlled_vlm_microbatch(index=start_index + i, num_images=count)
        for i, count in enumerate(image_counts)
    ])


@pytest.fixture
def make_planner(tiny_vlm, small_cluster, parallel2, cost_model):
    def factory(disk_tier=None, budget=8, cache_size=8):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=budget, seed=0)
        cache = PlanCache(capacity=cache_size, disk_tier=disk_tier)
        return OnlinePlanner(tiny_vlm, small_cluster, parallel2, cost_model,
                             searcher=searcher, plan_cache=cache)
    return factory


@pytest.fixture
def tier(tmp_path):
    return DiskCacheTier(str(tmp_path / "tier"))


class TestDiskTierMechanics:
    def _searched_plan(self, make_planner, batch):
        planner = make_planner()
        planner.plan_iteration(batch)
        (entry,) = planner.cache._entries.values()
        return entry

    def test_put_get_round_trip(self, tier, make_planner):
        plan = self._searched_plan(make_planner, controlled_batch([4, 8]))
        path = tier.put(plan)
        assert path is not None and os.path.exists(path)
        loaded = tier.get(plan.signature.digest)
        assert loaded is not None
        assert plan_to_dict(loaded) == plan_to_dict(plan)
        assert tier.stats.stores == 1
        assert tier.stats.hits == 1

    def test_content_addressed_layout(self, tier, make_planner):
        plan = self._searched_plan(make_planner, controlled_batch([4, 8]))
        path = tier.put(plan)
        assert os.path.basename(path) == plan.signature.digest + TIER_SUFFIX
        assert tier.digests() == [plan.signature.digest]

    def test_missing_digest_is_a_miss(self, tier):
        assert tier.get("ab" * 32) is None
        assert tier.stats.misses == 1
        assert tier.stats.errors == 0

    def test_digest_is_path_validated(self, tier):
        with pytest.raises(ValueError):
            tier.path_for("../escape")

    def test_corrupt_file_is_a_tolerated_miss(self, tier, make_planner):
        plan = self._searched_plan(make_planner, controlled_batch([4, 8]))
        path = tier.put(plan)
        with open(path, "w") as f:
            f.write("{not json")
        assert tier.get(plan.signature.digest) is None
        assert tier.stats.errors == 1

    def test_foreign_format_is_a_tolerated_miss(self, tier, make_planner):
        plan = self._searched_plan(make_planner, controlled_batch([4, 8]))
        path = tier.put(plan)
        with open(path) as f:
            payload = json.load(f)
        payload["format"] = "something-else"
        atomic_write_json(path, payload)
        assert tier.get(plan.signature.digest) is None

    def test_stale_version_is_a_tolerated_miss(self, tier, make_planner):
        plan = self._searched_plan(make_planner, controlled_batch([4, 8]))
        path = tier.put(plan)
        with open(path) as f:
            payload = json.load(f)
        payload["version"] = TIER_FILE_VERSION + 1
        atomic_write_json(path, payload)
        assert tier.get(plan.signature.digest) is None

    def test_invalidate_contexts_unlinks(self, tier, make_planner):
        plan = self._searched_plan(make_planner, controlled_batch([4, 8]))
        tier.put(plan)
        context = plan.signature.context_digest
        assert tier.invalidate_contexts({context}) == 1
        assert tier.digests() == []
        assert tier.get(plan.signature.digest) is None
        assert tier.stats.invalidations == 1

    def test_invalidate_other_context_keeps_entry(self, tier, make_planner):
        plan = self._searched_plan(make_planner, controlled_batch([4, 8]))
        tier.put(plan)
        assert tier.invalidate_contexts({"0" * 64}) == 0
        assert tier.digests() == [plan.signature.digest]

    def test_clear_and_snapshot(self, tier, make_planner):
        plan = self._searched_plan(make_planner, controlled_batch([4, 8]))
        tier.put(plan)
        snap = tier.snapshot()
        assert snap["entries"] == 1
        assert snap["stores"] == 1
        assert tier.clear() == 1
        assert tier.digests() == []

    def test_atomic_write_leaves_no_temp_files(self, tier, make_planner):
        plan = self._searched_plan(make_planner, controlled_batch([4, 8]))
        tier.put(plan)
        leftovers = [name for name in os.listdir(tier.directory)
                     if not name.endswith(TIER_SUFFIX)]
        assert leftovers == []


class TestTierParity:
    """Memory-served and disk-served hits must be indistinguishable in
    everything but the ``tier`` label."""

    def _first_entry(self, planner):
        (entry,) = planner.cache._entries.values()
        return entry

    def test_disk_hit_is_bit_identical(self, tier, make_planner):
        batch = controlled_batch([4, 8])
        searcher_side = make_planner(disk_tier=tier)
        cold = searcher_side.plan_iteration(batch)
        stored = plan_to_dict(self._first_entry(searcher_side))

        restarted = make_planner(disk_tier=tier)  # empty memory tier
        warm = restarted.plan_iteration(batch)
        assert warm.cache_hit
        assert warm.cache_tier == "disk"
        assert plan_to_dict(self._first_entry(restarted)) == stored
        assert warm.schedule.order == cold.schedule.order
        assert warm.total_ms == pytest.approx(cold.total_ms, rel=1e-12)

    def test_hit_accounting_is_tier_blind(self, tier, make_planner):
        batch = controlled_batch([4, 8])
        make_planner(disk_tier=tier).plan_iteration(batch)

        via_disk = make_planner(disk_tier=tier)
        via_disk.plan_iteration(batch)      # disk hit (promotes)
        via_disk.plan_iteration(batch)      # memory hit

        via_memory = make_planner(disk_tier=None)
        cold = via_memory.plan_iteration(batch)
        assert not cold.cache_hit
        via_memory.plan_iteration(batch)    # memory hit
        via_memory.plan_iteration(batch)    # memory hit

        # Same tier-blind hit count; only the disk_hits subset differs.
        assert via_disk.cache_stats.hits == via_memory.cache_stats.hits == 2
        assert via_disk.cache_stats.disk_hits == 1
        assert via_memory.cache_stats.disk_hits == 0

    def test_tier_labels(self, tier, make_planner):
        batch = controlled_batch([4, 8])
        make_planner(disk_tier=tier).plan_iteration(batch)
        planner = make_planner(disk_tier=tier)
        first = planner.plan_iteration(batch)
        second = planner.plan_iteration(batch)
        assert (first.cache_tier, second.cache_tier) == ("disk", "memory")

    def test_miss_has_no_tier(self, make_planner):
        planner = make_planner()
        result = planner.plan_iteration(controlled_batch([4, 8]))
        assert not result.cache_hit
        assert result.cache_tier is None

    def test_disk_promotion_respects_capacity(self, tier, make_planner):
        batches = [controlled_batch([n]) for n in (2, 4, 8)]
        writer = make_planner(disk_tier=tier, cache_size=8)
        for batch in batches:
            writer.plan_iteration(batch)
        assert len(tier.digests()) == 3

        reader = make_planner(disk_tier=tier, cache_size=1)
        for batch in batches:
            result = reader.plan_iteration(batch)
            assert result.cache_tier == "disk"
        assert len(reader.cache) == 1
        assert reader.cache.stats.evictions == 2
        # Promotions are reads, not stores: the tier's files are the
        # original three, untouched.
        assert reader.cache.stats.disk_hits == 3
        assert tier.stats.stores == 3

    def test_write_through_on_store(self, tier, make_planner):
        planner = make_planner(disk_tier=tier)
        planner.plan_iteration(controlled_batch([4, 8]))
        assert len(tier.digests()) == 1
        assert tier.stats.stores == 1

    def test_near_miss_stays_memory_only(self, tier, make_planner):
        writer = make_planner(disk_tier=tier)
        writer.plan_iteration(controlled_batch([8, 8]))
        # Same process: the near candidate is in memory -> warm start.
        warm = writer.plan_iteration(controlled_batch([8, 9]))
        assert not warm.cache_hit and warm.warm_started

        # Fresh process: the disk tier is exact-match only (near-miss
        # scans are a memory-tier feature), so no warm start and no
        # disk hit is recorded for the near signature.
        reader = make_planner(disk_tier=tier)
        result = reader.plan_iteration(controlled_batch([4, 4]))
        assert not result.cache_hit
        assert result.cache_tier is None
        assert reader.cache.stats.disk_hits == 0

    def test_invalidation_reaches_disk(self, tier, make_planner,
                                       small_cluster, parallel2,
                                       cost_model, tiny_vlm):
        planner = make_planner(disk_tier=tier)
        planner.plan_iteration(controlled_batch([4, 8]))
        context = self._first_entry(planner).signature.context_digest
        removed = planner.cache.invalidate_contexts({context})
        # One memory entry + one disk file.
        assert removed == 2
        assert tier.digests() == []
        restarted = make_planner(disk_tier=tier)
        fresh = restarted.plan_iteration(controlled_batch([4, 8]))
        assert not fresh.cache_hit


class TestAtomicWriteJson:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "payload.json")
        atomic_write_json(path, {"a": 1})
        with open(path) as f:
            assert json.load(f) == {"a": 1}

    def test_preserves_mode(self, tmp_path):
        path = str(tmp_path / "payload.json")
        atomic_write_json(path, {"a": 1})
        os.chmod(path, 0o640)
        atomic_write_json(path, {"a": 2})
        assert os.stat(path).st_mode & 0o777 == 0o640

    def test_failure_leaves_target_intact(self, tmp_path):
        path = str(tmp_path / "payload.json")
        atomic_write_json(path, {"a": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"a": object()})
        with open(path) as f:
            assert json.load(f) == {"a": 1}
        leftovers = [n for n in os.listdir(tmp_path) if n != "payload.json"]
        assert leftovers == []
