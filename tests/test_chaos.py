"""Deterministic fault injection (src/repro/chaos/).

* **Schedules** — whether operation *n* at a site faults is a pure
  function of (seed, site, n): same seed ⇒ identical sequence, the
  live path and the stateless replay agree, and (de)serialisation
  round-trips the whole plan.
* **Scoping** — shard filters, operation windows and ``max_events``
  caps arm and disarm exactly where specified.
* **Replay verification** — :meth:`FaultPlan.verify_log` accepts a
  faithful log and rejects tampered kinds, fabricated events and
  missing scheduled events, in both directions.
* **Disk-tier hook** — an armed ``disk.get``/``disk.put`` spec turns
  tier operations into counted I/O failures; planning on top of the
  faulted tier still yields the bit-identical plan (the tier degrades
  to a pass-through).
"""

import json

import pytest

from repro.chaos import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    SCENARIOS,
    scenario_by_name,
)
from repro.core.cachetier import DiskCacheTier
from repro.core.plancache import PlanCache
from repro.core.planner import OnlinePlanner
from repro.core.searcher import ScheduleSearcher
from repro.data.batching import GlobalBatch
from repro.data.packing import controlled_vlm_microbatch


def controlled_batch(image_counts, start_index=0):
    return GlobalBatch([
        controlled_vlm_microbatch(index=start_index + i, num_images=count)
        for i, count in enumerate(image_counts)
    ])


@pytest.fixture
def make_planner(tiny_vlm, small_cluster, parallel2, cost_model):
    def factory(disk_tier=None, budget=8, cache_size=8):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=budget, seed=0)
        cache = PlanCache(capacity=cache_size, disk_tier=disk_tier)
        return OnlinePlanner(tiny_vlm, small_cluster, parallel2, cost_model,
                             searcher=searcher, plan_cache=cache)
    return factory


class TestFaultSpec:
    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="rpc.bogus", kind="drop")

    def test_rejects_kind_invalid_for_site(self):
        # 'corrupt' is a response-side fault; arriving requests are
        # either read whole or dropped.
        with pytest.raises(ValueError, match="not valid at site"):
            FaultSpec(site="rpc.recv", kind="corrupt")

    def test_rejects_out_of_range_rate(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(site="rpc.recv", kind="drop", rate=1.5)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec(site="rpc.response", kind="slow", delay_s=-0.1)

    def test_shard_scoping(self):
        spec = FaultSpec(site="disk.get", kind="error", shards=(1, 3))
        assert spec.applies_to_shard(1)
        assert spec.applies_to_shard(3)
        assert not spec.applies_to_shard(0)
        assert not spec.applies_to_shard(None)
        everywhere = FaultSpec(site="disk.get", kind="error")
        assert everywhere.applies_to_shard(0)
        assert everywhere.applies_to_shard(None)

    def test_window(self):
        spec = FaultSpec(site="rpc.recv", kind="drop", after=2, until=5)
        assert [spec.in_window(i) for i in range(7)] == \
            [False, False, True, True, True, False, False]

    def test_dict_roundtrip(self):
        spec = FaultSpec(site="rpc.response", kind="slow", rate=0.25,
                         delay_s=0.5, after=1, until=9, max_events=3,
                         shards=(0, 2))
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlanDeterminism:
    SPECS = (FaultSpec(site="rpc.recv", kind="drop", rate=0.5),)

    def run_plan(self, seed, ops=64):
        plan = FaultPlan(seed=seed, specs=self.SPECS)
        return [plan.decide("rpc.recv") for _ in range(ops)]

    def test_same_seed_same_sequence(self):
        assert self.run_plan(7) == self.run_plan(7)

    def test_different_seed_different_sequence(self):
        assert self.run_plan(7) != self.run_plan(8)

    def test_replay_matches_live_path(self):
        plan = FaultPlan(seed=3, specs=self.SPECS)
        live = [plan.decide("rpc.recv") for _ in range(40)]
        fired = [d for d in live if d is not None]
        replayed = FaultPlan(seed=3, specs=self.SPECS)
        assert replayed.replay_site("rpc.recv", 40) == fired
        assert plan.events == fired
        assert plan.operation_counts()["rpc.recv"] == 40

    def test_sites_are_independent(self):
        # Consuming ops at one site must not shift another's schedule.
        specs = (FaultSpec(site="rpc.recv", kind="drop", rate=0.5),
                 FaultSpec(site="disk.get", kind="error", rate=0.5))
        lone = FaultPlan(seed=5, specs=specs)
        lone_seq = [lone.decide("rpc.recv") for _ in range(20)]
        mixed = FaultPlan(seed=5, specs=specs)
        mixed_seq = []
        for _ in range(20):
            mixed.decide("disk.get")
            mixed_seq.append(mixed.decide("rpc.recv"))
        assert mixed_seq == lone_seq

    def test_max_events_caps_firing(self):
        specs = (FaultSpec(site="disk.put", kind="error", rate=1.0,
                           max_events=2),)
        plan = FaultPlan(seed=0, specs=specs)
        fired = [plan.decide("disk.put") for _ in range(10)]
        assert sum(1 for d in fired if d is not None) == 2
        assert fired[0] is not None and fired[1] is not None

    def test_shard_index_decorrelates(self):
        spec = FaultSpec(site="rpc.recv", kind="drop", rate=1.0,
                         shards=(1,))
        shard0 = FaultPlan(seed=0, specs=(spec,), shard_index=0)
        shard1 = FaultPlan(seed=0, specs=(spec,), shard_index=1)
        assert all(shard0.decide("rpc.recv") is None for _ in range(5))
        assert all(shard1.decide("rpc.recv") is not None
                   for _ in range(5))

    def test_json_roundtrip(self):
        plan = FaultPlan(seed=11, specs=self.SPECS, shard_index=2)
        back = FaultPlan.from_json(plan.to_json())
        assert back.seed == 11
        assert back.shard_index == 2
        assert back.specs == list(self.SPECS)
        assert back.replay_site("rpc.recv", 30) == \
            plan.replay_site("rpc.recv", 30)

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ValueError, match="object"):
            FaultPlan.from_json("[1, 2]")


class TestVerifyLog:
    SPECS = (FaultSpec(site="rpc.response", kind="slow", rate=0.5,
                       delay_s=0.01),)

    def faithful_log(self, ops=32):
        plan = FaultPlan(seed=9, specs=self.SPECS)
        for _ in range(ops):
            plan.decide("rpc.response")
        return [json.loads(json.dumps(e.to_dict())) for e in plan.events]

    def verifier(self):
        return FaultPlan(seed=9, specs=self.SPECS)

    def test_faithful_log_passes(self):
        log = self.faithful_log()
        assert log, "need at least one fired fault for a real check"
        assert self.verifier().verify_log(log) == []

    def test_empty_log_is_vacuously_consistent(self):
        # A SIGKILLed shard never dumps; absence proves nothing either
        # way and must not fail the replay check.
        assert self.verifier().verify_log([]) == []

    def test_tampered_kind_is_caught(self):
        log = self.faithful_log()
        log[0]["kind"] = "drop"
        problems = self.verifier().verify_log(log)
        assert any("!=" in p for p in problems)

    def test_fabricated_event_is_caught(self):
        log = self.faithful_log()
        plan = self.verifier()
        top = max(e["index"] for e in log)
        quiet = [i for i in range(top)
                 if plan.expected_decision("rpc.response", i) is None]
        assert quiet, "rate 0.5 over 32 ops should leave quiet indices"
        log.append({"site": "rpc.response", "index": quiet[0],
                    "kind": "slow", "delay_s": 0.01})
        problems = plan.verify_log(log)
        assert any("predicts no fault" in p for p in problems)

    def test_missing_scheduled_event_is_caught(self):
        log = self.faithful_log()
        assert len(log) >= 2, "need two fired faults to drop one"
        dropped = log.pop(0)  # keep the later event as the horizon
        problems = self.verifier().verify_log(log)
        assert any(f"[{dropped['index']}]" in p
                   and "no event there" in p for p in problems)

    def test_unknown_site_is_flagged(self):
        problems = self.verifier().verify_log(
            [{"site": "gpu.meltdown", "index": 0, "kind": "drop"}])
        assert any("unknown site" in p for p in problems)


class TestScenarios:
    def test_registry_is_self_describing(self):
        assert len(SCENARIOS) >= 5
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name
            assert scenario.description
            assert scenario.deadline_s > 0

    def test_lookup(self):
        assert scenario_by_name("blackout").name == "blackout"
        with pytest.raises(ValueError, match="crash-restart"):
            scenario_by_name("meteor-strike")

    def test_specs_are_site_valid(self):
        # Every scenario's specs passed FaultSpec validation on import;
        # spot-check the shard scoping contract they rely on.
        for scenario in SCENARIOS.values():
            for spec in scenario.specs:
                assert spec.site in FAULT_SITES


class TestDiskTierFaults:
    def test_put_fault_counts_error_and_writes_nothing(self, tmp_path,
                                                       make_planner):
        clean_dir = tmp_path / "clean"
        clean = DiskCacheTier(str(clean_dir))
        planner = make_planner(disk_tier=clean)
        planner.plan_iteration(controlled_batch([1, 2]))
        digest = clean.digests()[0]
        plan = clean.get(digest)
        assert plan is not None

        faulted = DiskCacheTier(
            str(tmp_path / "faulted"),
            fault_plan=FaultPlan(specs=(
                FaultSpec(site="disk.put", kind="error", rate=1.0),)),
        )
        assert faulted.put(plan) is None
        assert len(faulted) == 0
        assert faulted.stats.errors == 1

    def test_get_fault_is_a_counted_miss(self, tmp_path, make_planner):
        directory = tmp_path / "tier"
        clean = DiskCacheTier(str(directory))
        planner = make_planner(disk_tier=clean)
        planner.plan_iteration(controlled_batch([1, 2]))
        digest = clean.digests()[0]

        faulted = DiskCacheTier(
            str(directory),
            fault_plan=FaultPlan(specs=(
                FaultSpec(site="disk.get", kind="error", rate=1.0),)),
        )
        assert faulted.get(digest) is None
        assert faulted.stats.misses == 1
        assert faulted.stats.errors == 1
        # The file itself is intact — only the read was faulted.
        assert clean.get(digest) is not None

    def test_planning_survives_a_dead_tier(self, tmp_path, make_planner):
        """With every tier op erroring the cache degrades to a
        pass-through: same batches, bit-identical makespans."""
        batch = controlled_batch([1, 2, 1])
        reference = make_planner(
            disk_tier=DiskCacheTier(str(tmp_path / "ok")))
        want = reference.plan_iteration(batch).total_ms

        dead = DiskCacheTier(
            str(tmp_path / "dead"),
            fault_plan=FaultPlan(specs=(
                FaultSpec(site="disk.get", kind="error", rate=1.0),
                FaultSpec(site="disk.put", kind="error", rate=1.0))),
        )
        planner = make_planner(disk_tier=dead)
        assert planner.plan_iteration(batch).total_ms == want
        assert len(dead) == 0
        assert dead.stats.errors > 0
