"""Tests for the cluster substrate (devices, topology, rank mapping)."""

import pytest

from repro.cluster.devices import (
    GPU_A100_80G,
    GPU_H100_80G,
    GPU_H20_96G,
    GPU_H800_80G,
    GpuSpec,
    gpu_by_name,
)
from repro.cluster.topology import (
    ClusterSpec,
    ParallelConfig,
    cluster_h20,
    cluster_h100,
    cluster_h800,
)


class TestGpuSpec:
    def test_h800_peak_flops(self):
        assert GPU_H800_80G.flops == pytest.approx(989e12)

    def test_h800_memory_bytes(self):
        assert GPU_H800_80G.memory_bytes == 80 * 1024**3

    def test_h20_has_more_memory_less_compute_than_h800(self):
        assert GPU_H20_96G.memory_gb > GPU_H800_80G.memory_gb
        assert GPU_H20_96G.bf16_tflops < GPU_H800_80G.bf16_tflops

    def test_h800_nvlink_capped_vs_h100(self):
        # The H800 export variant caps NVLink relative to H100.
        assert GPU_H800_80G.nvlink_gbps < GPU_H100_80G.nvlink_gbps

    def test_bandwidth_conversions(self):
        spec = GpuSpec("x", 100.0, 10.0, 1000.0, 100.0, 10.0)
        assert spec.memory_bandwidth == 1000e9
        assert spec.nvlink_bandwidth == 100e9
        assert spec.nic_bandwidth == 10e9
        assert spec.pcie_bandwidth == 55e9

    def test_registry_lookup(self):
        assert gpu_by_name("H800-80G") is GPU_H800_80G
        assert gpu_by_name("A100-80G") is GPU_A100_80G

    def test_registry_unknown_device(self):
        with pytest.raises(KeyError, match="unknown GPU"):
            gpu_by_name("B200")


class TestParallelConfig:
    def test_world_size(self):
        assert ParallelConfig(dp=2, tp=4, pp=8).world_size == 64

    def test_describe(self):
        assert ParallelConfig(dp=1, tp=4, pp=4).describe() == "DP1,TP4,PP4"

    @pytest.mark.parametrize("field", ["dp", "tp", "pp"])
    def test_rejects_nonpositive(self, field):
        kwargs = {"dp": 1, "tp": 1, "pp": 1}
        kwargs[field] = 0
        with pytest.raises(ValueError):
            ParallelConfig(**kwargs)


class TestClusterSpec:
    def test_world_size(self):
        cluster = cluster_h800(num_nodes=8)
        assert cluster.world_size == 64

    def test_search_worker_budget_half_cores(self):
        cluster = cluster_h800(num_nodes=1)
        assert cluster.search_worker_budget == 64  # 128 cores / 2

    def test_validate_rejects_oversized_layout(self):
        cluster = cluster_h800(num_nodes=1)
        with pytest.raises(ValueError, match="needs"):
            cluster.validate(ParallelConfig(dp=4, tp=8, pp=8))

    def test_validate_rejects_tp_across_nodes(self):
        cluster = cluster_h800(num_nodes=4)
        with pytest.raises(ValueError, match="NVLink"):
            cluster.validate(ParallelConfig(dp=1, tp=16, pp=2))

    def test_locate_tp_innermost(self):
        cluster = cluster_h800(num_nodes=2)
        parallel = ParallelConfig(dp=1, tp=8, pp=2)
        a = cluster.locate(parallel, dp=0, pp=0, tp=0)
        b = cluster.locate(parallel, dp=0, pp=0, tp=7)
        assert a.node == b.node == 0  # whole TP group on one node
        c = cluster.locate(parallel, dp=0, pp=1, tp=0)
        assert c.node == 1  # next pipeline rank on the next node

    def test_locate_out_of_range(self):
        cluster = cluster_h800(num_nodes=1)
        parallel = ParallelConfig(dp=1, tp=2, pp=2)
        with pytest.raises(ValueError):
            cluster.locate(parallel, dp=0, pp=2, tp=0)

    def test_p2p_bandwidth_intra_vs_inter_node(self):
        cluster = cluster_h800(num_nodes=2)
        # TP=8 puts each pipeline rank on its own node.
        inter = ParallelConfig(dp=1, tp=8, pp=2)
        assert cluster.p2p_bandwidth(inter, 0, 1) == GPU_H800_80G.nic_bandwidth
        # TP=2 keeps 4 pipeline ranks inside one node.
        intra = ParallelConfig(dp=1, tp=2, pp=4)
        assert cluster.p2p_bandwidth(intra, 0, 1) == GPU_H800_80G.nvlink_bandwidth

    def test_pipeline_neighbors_same_node(self):
        cluster = cluster_h800(num_nodes=2)
        parallel = ParallelConfig(dp=1, tp=4, pp=4)
        hops = cluster.pipeline_neighbors_same_node(parallel)
        assert hops == [True, False, True]  # 2 ranks per node

    def test_named_clusters(self):
        assert cluster_h20().gpu is GPU_H20_96G
        assert cluster_h100(4).gpu is GPU_H100_80G
        assert cluster_h800().gpu is GPU_H800_80G
