"""Tests for the roofline cost model and the operator DAG simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.devices import GPU_H20_96G, GPU_H800_80G
from repro.sim.costmodel import CostModel
from repro.sim.graph import Graph, OpNode, TensorNode, build_chunk_graph
from tests.conftest import TINY_LM, TINY_VIT


class TestOpLatency:
    def test_compute_bound_op(self):
        cm = CostModel()
        # Huge FLOPs, tiny memory: latency set by the compute term.
        ms = cm.op_latency_ms(GPU_H800_80G, flops=1e12, mem_bytes=1)
        expected = 1e12 / (989e12 * cm.compute_efficiency) * 1e3
        assert ms == pytest.approx(expected)

    def test_memory_bound_op(self):
        cm = CostModel()
        ms = cm.op_latency_ms(GPU_H800_80G, flops=1, mem_bytes=1e9)
        expected = 1e9 / (3350e9 * cm.memory_efficiency) * 1e3
        assert ms == pytest.approx(expected)

    def test_network_bound_op(self):
        cm = CostModel()
        ms = cm.op_latency_ms(GPU_H800_80G, net_bytes=1e9)
        expected = 1e9 / (200e9 * cm.network_efficiency) * 1e3
        assert ms == pytest.approx(expected)

    def test_custom_bandwidth(self):
        cm = CostModel()
        fast = cm.op_latency_ms(GPU_H800_80G, net_bytes=1e9, net_bandwidth=400e9)
        slow = cm.op_latency_ms(GPU_H800_80G, net_bytes=1e9, net_bandwidth=25e9)
        assert slow > fast

    def test_saturation_penalises_small_batches(self):
        cm = CostModel()
        small = cm.op_latency_ms(GPU_H800_80G, flops=1e12, tokens=500)
        large = cm.op_latency_ms(GPU_H800_80G, flops=1e12, tokens=500_000)
        assert small > large

    def test_saturation_ramp_monotone(self):
        cm = CostModel()
        effs = [cm.compute_saturation(t) for t in (100, 1000, 10_000, 100_000)]
        assert effs == sorted(effs)
        assert effs[-1] < 1.0
        assert cm.compute_saturation(0) == 1.0


class TestStageCost:
    def test_backward_is_ratio_of_forward(self):
        cm = CostModel()
        cost = cm.stage_cost(GPU_H800_80G, TINY_LM, 4, 1, 1024)
        assert cost.backward_ms == pytest.approx(cost.forward_ms * cm.backward_ratio)

    def test_recompute_equals_forward(self):
        cm = CostModel()
        cost = cm.stage_cost(GPU_H800_80G, TINY_LM, 4, 1, 1024)
        assert cost.recompute_ms == pytest.approx(cost.forward_ms)

    def test_ckpt_bytes_below_full(self):
        cm = CostModel()
        cost = cm.stage_cost(GPU_H800_80G, TINY_LM, 4, 1, 1024)
        assert cost.act_ckpt_bytes < cost.act_bytes

    def test_slower_gpu_is_slower(self):
        cm = CostModel()
        h800 = cm.stage_cost(GPU_H800_80G, TINY_LM, 4, 4, 2048)
        h20 = cm.stage_cost(GPU_H20_96G, TINY_LM, 4, 4, 2048)
        assert h20.forward_ms > h800.forward_ms

    def test_tp_reduces_latency_for_large_models(self):
        from repro.models.zoo import LLAMA3_8B

        cm = CostModel()
        tp1 = cm.stage_cost(GPU_H800_80G, LLAMA3_8B, 4, 1, 8192, tp=1)
        tp4 = cm.stage_cost(GPU_H800_80G, LLAMA3_8B, 4, 1, 8192, tp=4)
        assert tp4.forward_ms < tp1.forward_ms

    def test_tp_hurts_tiny_models(self):
        # For tiny layers the all-reduce dominates: TP is a net loss,
        # which the cost model must reflect.
        cm = CostModel()
        tp1 = cm.stage_cost(GPU_H800_80G, TINY_LM, 4, 4, 2048, tp=1)
        tp4 = cm.stage_cost(GPU_H800_80G, TINY_LM, 4, 4, 2048, tp=4)
        assert tp4.forward_ms > tp1.forward_ms

    def test_with_factors_copy(self):
        cm = CostModel()
        cm2 = cm.with_factors(compute_efficiency=0.5)
        assert cm2.compute_efficiency == 0.5
        assert cm.compute_efficiency == 0.62  # original untouched

    def test_p2p_latency_zero_bytes(self):
        cm = CostModel()
        assert cm.p2p_latency_ms(0.0, 1e9) == 0.0

    def test_allreduce_single_rank_free(self):
        cm = CostModel()
        assert cm.collective_allreduce_ms(GPU_H800_80G, 1e6, 1) == 0.0
        assert cm.collective_allreduce_ms(GPU_H800_80G, 1e6, 8) > 0.0


class TestGraph:
    def _linear_graph(self):
        g = Graph()
        g.add_tensor(TensorNode("a", 100.0))
        g.add_tensor(TensorNode("b", 100.0))
        g.add_tensor(TensorNode("c", 100.0))
        g.add_op(OpNode("op1", flops=1e9, inputs=["a"], outputs=["b"]))
        g.add_op(OpNode("op2", flops=1e9, inputs=["b"], outputs=["c"]))
        return g

    def test_sequential_timing(self):
        g = self._linear_graph()
        result = g.run(CostModel(), GPU_H800_80G)
        assert result.op_start_ms["op2"] == pytest.approx(result.op_end_ms["op1"])
        assert result.total_ms == pytest.approx(result.op_end_ms["op2"])

    def test_parallel_devices_overlap(self):
        g = Graph()
        g.add_tensor(TensorNode("x", 1.0, device=0))
        g.add_tensor(TensorNode("y", 1.0, device=1))
        g.add_op(OpNode("a", flops=1e9, device=0, outputs=["x"]))
        g.add_op(OpNode("b", flops=1e9, device=1, outputs=["y"]))
        result = g.run(CostModel(), GPU_H800_80G)
        assert result.op_start_ms["a"] == 0.0
        assert result.op_start_ms["b"] == 0.0  # different device: parallel

    def test_tensor_lifetime_spans_reads(self):
        g = self._linear_graph()
        result = g.run(CostModel(), GPU_H800_80G)
        born, died = result.tensor_lifetime["b"]
        assert born == pytest.approx(result.op_start_ms["op1"])
        assert died == pytest.approx(result.op_end_ms["op2"])

    def test_persistent_tensor_lives_forever(self):
        g = Graph()
        g.add_tensor(TensorNode("w", 500.0, persistent=True))
        g.add_tensor(TensorNode("out", 10.0))
        g.add_op(OpNode("op", flops=1e9, inputs=["w"], outputs=["out"]))
        result = g.run(CostModel(), GPU_H800_80G)
        assert result.tensor_lifetime["w"] == (0.0, result.total_ms)

    def test_peak_memory_counts_live_tensors(self):
        g = self._linear_graph()
        result = g.run(CostModel(), GPU_H800_80G)
        assert result.peak_memory_bytes[0] >= 200.0  # a+b overlap

    def test_duplicate_names_rejected(self):
        g = Graph()
        g.add_tensor(TensorNode("t", 1.0))
        with pytest.raises(ValueError):
            g.add_tensor(TensorNode("t", 1.0))
        g.add_op(OpNode("op", outputs=["t"]))
        with pytest.raises(ValueError):
            g.add_op(OpNode("op"))

    def test_unknown_tensor_rejected(self):
        g = Graph()
        with pytest.raises(ValueError, match="unknown tensor"):
            g.add_op(OpNode("op", inputs=["ghost"]))

    def test_double_producer_rejected(self):
        g = Graph()
        g.add_tensor(TensorNode("t", 1.0))
        g.add_op(OpNode("p1", outputs=["t"]))
        with pytest.raises(ValueError, match="producer"):
            g.add_op(OpNode("p2", outputs=["t"]))


class TestChunkGraph:
    def test_op_count_scales_with_layers(self):
        g1 = build_chunk_graph(TINY_LM, 1, 1, 128)
        g4 = build_chunk_graph(TINY_LM, 4, 1, 128)
        assert g4.num_ops == 4 * g1.num_ops

    def test_tp_adds_allreduce_ops(self):
        g_tp1 = build_chunk_graph(TINY_LM, 2, 1, 128, tp=1)
        g_tp2 = build_chunk_graph(TINY_LM, 2, 1, 128, tp=2)
        assert g_tp2.num_ops > g_tp1.num_ops

    def test_graph_latency_close_to_closed_form(self):
        """The op-level DAG and the closed-form chunk cost must agree on
        the compute-bound total within a modest tolerance."""
        cm = CostModel(kernel_overhead_us=0.0, stage_overhead_us=0.0)
        layers, batch, seq = 4, 8, 2048
        g = build_chunk_graph(TINY_LM, layers, batch, seq)
        dag_ms = g.run(cm, GPU_H800_80G).total_ms
        closed = cm.stage_cost(GPU_H800_80G, TINY_LM, layers, batch, seq)
        assert dag_ms == pytest.approx(closed.forward_ms, rel=0.35)


@settings(max_examples=20, deadline=None)
@given(
    layers=st.integers(1, 6),
    batch=st.integers(1, 8),
    seq=st.sampled_from([128, 512, 2048]),
)
def test_property_stage_cost_monotone_in_layers(layers, batch, seq):
    cm = CostModel()
    a = cm.stage_cost(GPU_H800_80G, TINY_VIT, layers, batch, seq)
    b = cm.stage_cost(GPU_H800_80G, TINY_VIT, layers + 1, batch, seq)
    assert b.forward_ms > a.forward_ms
    assert b.act_bytes > a.act_bytes
