"""Tests for datasets, distributions, packing, batching and workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import constants
from repro.data.batching import (
    GlobalBatch,
    Microbatch,
    iteration_flops,
    microbatch_module_flops,
    microbatch_total_flops,
    module_is_splittable,
    module_workload,
)
from repro.data.datasets import (
    ImageTextSample,
    VideoSample,
    image_dataset,
    mixture_image_dataset,
    mixture_video_dataset,
    video_dataset,
)
from repro.data.distributions import (
    LAION_2B,
    OBELICS,
    ratio_histogram,
)
from repro.data.packing import (
    controlled_vlm_microbatch,
    pack_image_text,
    pack_video,
    unimodal_lm_microbatch,
)
from repro.data.workload import (
    DynamicImageBoundsSchedule,
    t2v_workload,
    vlm_workload,
)
from repro.models.lmm import build_vlm
from tests.conftest import TINY_DIT, TINY_LM, TINY_VIT


class TestConstants:
    def test_patch_math_from_paper(self):
        # 728px / patch 14 -> 52x52 = 2704 patches; /16 merge -> 169.
        assert constants.IMAGE_PATCH_TOKENS == 2704
        assert constants.IMAGE_LM_TOKENS == 169

    def test_max_images_is_48(self):
        assert constants.MAX_IMAGES_PER_MICROBATCH == 48


class TestDistributions:
    def test_laion_mean_matches_paper(self):
        # The paper reports 16.4 tokens/image for LAION-2B.
        rng = np.random.default_rng(0)
        samples = LAION_2B.sample(rng, size=200_000)
        assert float(np.mean(samples)) == pytest.approx(16.4, rel=0.15)

    def test_obelics_heavy_tail(self):
        rng = np.random.default_rng(0)
        samples = OBELICS.sample(rng, size=200_000)
        assert samples.min() >= 0.4
        assert samples.max() <= 3115.0
        assert float(np.quantile(samples, 0.99)) > 500  # long tail

    def test_histogram_normalised(self):
        rng = np.random.default_rng(1)
        centers, props = ratio_histogram(LAION_2B, rng, num_samples=20_000)
        assert props.sum() == pytest.approx(1.0)
        assert len(centers) == len(props)


class TestDatasets:
    def test_laion_single_image(self):
        ds = image_dataset("LAION-2B", seed=3)
        for sample in ds.take(50):
            assert sample.num_images == 1

    def test_obelics_multi_image(self):
        ds = image_dataset("OBELICS", seed=3)
        counts = [s.num_images for s in ds.take(300)]
        assert max(counts) > 1
        assert np.mean(counts) == pytest.approx(2.5, rel=0.4)

    def test_video_duration_capped(self):
        ds = video_dataset("ShareGPT4Video", seed=2)
        for clip in ds.take(100):
            assert 1.0 <= clip.duration_seconds <= constants.MAX_VIDEO_SECONDS

    def test_deterministic_by_seed(self):
        a = image_dataset("OBELICS", seed=9).take(20)
        b = image_dataset("OBELICS", seed=9).take(20)
        assert a == b

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            image_dataset("COYO")
        with pytest.raises(KeyError):
            video_dataset("Kinetics")

    def test_mixtures_sample_all_components(self):
        mix = mixture_image_dataset(seed=0)
        samples = mix.take(200)
        assert len(samples) == 200
        vmix = mixture_video_dataset(seed=0)
        assert len(vmix.take(50)) == 50

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            ImageTextSample(num_images=-1, text_tokens=10)
        with pytest.raises(ValueError):
            VideoSample(duration_seconds=0.0, caption_tokens=5)


class TestPacking:
    def test_vlm_capacity_respected(self):
        ds = mixture_image_dataset(seed=5)
        batch = pack_image_text(iter(ds.take(4000)), 16)
        for mb in batch:
            assert mb.num_images <= constants.MAX_IMAGES_PER_MICROBATCH
            assert mb.lm_sequence_tokens == constants.CONTEXT_LENGTH

    def test_video_grouping_limits(self):
        ds = mixture_video_dataset(seed=5)
        batch = pack_video(iter(ds.take(500)), 12)
        for mb in batch:
            assert 1 <= mb.num_clips <= constants.MAX_CLIPS_PER_MICROBATCH
            assert mb.video_seconds <= constants.MAX_VIDEO_SECONDS + 16.0

    def test_controlled_microbatch_exact_images(self):
        mb = controlled_vlm_microbatch(0, 20)
        assert mb.num_images == 20
        assert mb.lm_sequence_tokens == constants.CONTEXT_LENGTH

    def test_controlled_microbatch_clamps(self):
        mb = controlled_vlm_microbatch(0, 1000)
        assert mb.num_images == constants.MAX_IMAGES_PER_MICROBATCH

    def test_unimodal_microbatch(self):
        mb = unimodal_lm_microbatch(0)
        assert mb.kind == "lm"
        assert mb.num_images == 0

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=1, max_value=12), seed=st.integers(0, 50))
    def test_property_packing_invariants(self, n, seed):
        ds = mixture_image_dataset(seed=seed)
        batch = pack_image_text(iter(ds.take(2000)), n)
        assert len(batch) == n
        for mb in batch:
            image_tokens = mb.num_images * constants.IMAGE_LM_TOKENS
            assert image_tokens + mb.text_tokens == constants.CONTEXT_LENGTH
            assert mb.num_images >= 0


class TestBatching:
    def test_image_module_workload(self):
        arch = build_vlm(TINY_VIT, TINY_LM)
        mb = controlled_vlm_microbatch(0, 10)
        instances, seq, ctx = module_workload(arch.binding("tiny-vit"), mb)
        assert (instances, seq, ctx) == (10, constants.IMAGE_PATCH_TOKENS, 0)

    def test_text_module_workload_vlm(self):
        arch = build_vlm(TINY_VIT, TINY_LM)
        mb = controlled_vlm_microbatch(0, 10)
        instances, seq, ctx = module_workload(arch.binding("tiny-lm"), mb)
        assert instances == 1
        assert seq == constants.CONTEXT_LENGTH

    def test_video_module_workload(self):
        from repro.models.lmm import build_t2v

        arch = build_t2v(TINY_LM, TINY_DIT)
        mb = Microbatch(0, "t2v", num_clips=4, video_seconds=12.0,
                        caption_tokens=240)
        instances, seq, ctx = module_workload(arch.binding("tiny-dit"), mb)
        assert instances == 4
        assert seq == mb.video_tokens // 4
        assert ctx == 240
        # Captions pad into the fixed conditioning context window.
        lm_instances, lm_seq, _ = module_workload(arch.binding("tiny-lm"), mb)
        assert (lm_instances, lm_seq) == (1, constants.T2V_TEXT_CONTEXT)

    def test_video_tokens_respect_resolution_bucket(self):
        lowres = Microbatch(0, "t2v", num_clips=1, video_seconds=10.0,
                            caption_tokens=100, video_tokens_total=1960)
        default = Microbatch(0, "t2v", num_clips=1, video_seconds=10.0,
                             caption_tokens=100)
        assert lowres.video_tokens == 1960
        # 10 s at the default (mid-bucket) token rate.
        assert default.video_tokens == 10 * constants.VIDEO_TOKENS_PER_SECOND

    def test_splittability(self):
        arch = build_vlm(TINY_VIT, TINY_LM)
        assert module_is_splittable(arch.binding("tiny-vit"))
        assert not module_is_splittable(arch.binding("tiny-lm"))

    def test_more_images_cost_more_vit_flops(self):
        arch = build_vlm(TINY_VIT, TINY_LM)
        few = microbatch_module_flops(arch, controlled_vlm_microbatch(0, 2))
        many = microbatch_module_flops(arch, controlled_vlm_microbatch(0, 40))
        assert many["tiny-vit"] > 10 * few["tiny-vit"]
        # LM flops barely move (packed length constant).
        assert many["tiny-lm"] == pytest.approx(few["tiny-lm"], rel=0.01)

    def test_total_flops_includes_backward(self):
        arch = build_vlm(TINY_VIT, TINY_LM)
        mb = controlled_vlm_microbatch(0, 5)
        fw_only = microbatch_total_flops(arch, mb, with_backward=False)
        total = microbatch_total_flops(arch, mb)
        assert total == pytest.approx(3 * fw_only)

    def test_iteration_flops_sums_microbatches(self):
        arch = build_vlm(TINY_VIT, TINY_LM)
        mbs = [controlled_vlm_microbatch(i, 5) for i in range(3)]
        batch = GlobalBatch(mbs)
        assert iteration_flops(arch, batch) == pytest.approx(
            3 * microbatch_total_flops(arch, mbs[0])
        )

    def test_average_images(self):
        batch = GlobalBatch([controlled_vlm_microbatch(i, c)
                             for i, c in enumerate([2, 4, 6])])
        assert batch.average_images == pytest.approx(4.0)


class TestWorkloads:
    def test_vlm_stream_shapes(self):
        stream = vlm_workload(4, seed=0)
        batches = stream.batches(3)
        assert all(len(b) == 4 for b in batches)
        # Consecutive batches differ (dynamic data).
        assert [m.num_images for m in batches[0]] != [
            m.num_images for m in batches[1]
        ]

    def test_t2v_stream_shapes(self):
        stream = t2v_workload(3, seed=0)
        batch = stream.next_batch()
        assert len(batch) == 3
        assert all(m.kind == "t2v" for m in batch)

    def test_stream_rejects_bad_args(self):
        with pytest.raises(ValueError):
            vlm_workload(0)
        from repro.data.workload import WorkloadStream

        with pytest.raises(ValueError):
            WorkloadStream("audio", 4)

    def test_dynamic_bounds_rise_and_fall(self):
        sched = DynamicImageBoundsSchedule(num_microbatches=4)
        lows = [sched.bounds(i)[0] for i in range(sched.total_iterations)]
        # Rises during the first 5 iterations...
        assert lows[4] == sched.peak_lower
        # ...then decays to zero by the end of the pattern.
        assert lows[19] == 0
        # Second pattern repeats the first.
        assert lows[:20] == lows[20:40]

    def test_dynamic_bounds_batches_respect_bounds(self):
        sched = DynamicImageBoundsSchedule(num_microbatches=8, seed=3)
        for it in (0, 4, 12, 19):
            low, high = sched.bounds(it)
            batch = sched.batch(it)
            for mb in batch:
                assert low <= mb.num_images <= max(low, high)

    def test_dynamic_peak_average_near_22(self):
        # The paper reports a peak average of ~22 images.
        sched = DynamicImageBoundsSchedule(num_microbatches=64, seed=0)
        peak_batch = sched.batch(4)
        assert peak_batch.average_images == pytest.approx(24, abs=4)
