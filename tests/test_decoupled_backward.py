"""Tests for the zero-bubble-style decoupled-backward extension.

The paper's related-work section positions zero-bubble scheduling as a
complementary custom schedule DIP's searcher can incorporate; the graph
builder supports it behind ``decoupled_backward=True``: backward splits
into an input-gradient (dgrad) stage on the critical path and a
deferrable weight-gradient (wgrad) stage.
"""

import pytest

from repro.core.graphbuilder import DGRAD_SHARE, build_iteration_graph
from repro.core.interleaver import interleave_stages
from repro.core.schedule import validate_schedule
from repro.core.searcher import ScheduleSearcher
from repro.core.stages import Direction
from repro.data.workload import vlm_workload
from repro.sim.pipeline import simulate_pipeline


@pytest.fixture
def graphs(vlm_setup, small_cluster, parallel2, cost_model):
    arch, plan, partitioner = vlm_setup
    batch = vlm_workload(3, seed=4).next_batch()
    coupled = build_iteration_graph(
        arch, plan, batch, small_cluster, parallel2, cost_model,
        partitioner=partitioner,
    )
    decoupled = build_iteration_graph(
        arch, plan, batch, small_cluster, parallel2, cost_model,
        partitioner=partitioner, decoupled_backward=True,
    )
    return coupled, decoupled


class TestStructure:
    def test_stage_count_grows(self, graphs):
        coupled, decoupled = graphs
        n_bw = sum(1 for s in coupled.stages if not s.is_forward)
        assert len(decoupled.stages) == len(coupled.stages) + n_bw

    def test_backward_split_shares(self, graphs):
        _, decoupled = graphs
        by_pair = {}
        for stage in decoupled.stages:
            if not stage.is_forward:
                by_pair.setdefault(stage.pair_id, []).append(stage)
        for stages in by_pair.values():
            assert len(stages) == 2
            shares = sorted(s.latency_share for s in stages)
            assert shares == [pytest.approx(1.0 - DGRAD_SHARE),
                              pytest.approx(DGRAD_SHARE)]

    def test_only_wgrad_releases_memory(self, graphs):
        _, decoupled = graphs
        for stage in decoupled.stages:
            if stage.is_forward:
                continue
            if stage.latency_share == pytest.approx(DGRAD_SHARE):
                assert not stage.releases_memory
            else:
                assert stage.releases_memory

    def test_total_backward_latency_preserved(self, graphs):
        coupled, decoupled = graphs
        def bw_total(graph):
            return sum(graph.latency_ms(s) for s in graph.stages
                       if not s.is_forward)
        assert bw_total(decoupled) == pytest.approx(bw_total(coupled))

    def test_topological_and_valid(self, graphs, small_cluster, parallel2,
                                   cost_model):
        _, decoupled = graphs
        result = interleave_stages(decoupled, small_cluster, parallel2,
                                   cost_model)
        assert validate_schedule(decoupled, result.order) == []


class TestBehaviour:
    def test_decoupling_never_hurts(self, graphs, small_cluster, parallel2,
                                    cost_model):
        """Deferring wgrad off the critical path cannot make the greedy
        schedule slower (it strictly relaxes dependencies)."""
        coupled, decoupled = graphs
        base = interleave_stages(coupled, small_cluster, parallel2,
                                 cost_model).total_ms
        split = interleave_stages(decoupled, small_cluster, parallel2,
                                  cost_model).total_ms
        assert split <= base * 1.02

    def test_memory_released_after_wgrad(self, graphs, small_cluster,
                                         parallel2, cost_model):
        """Activations must stay resident through the wgrad stage — the
        memory timeline accounts for the *latest* backward stage."""
        _, decoupled = graphs
        result = interleave_stages(decoupled, small_cluster, parallel2,
                                   cost_model)
        sim = simulate_pipeline(decoupled, result.order, small_cluster,
                                parallel2, cost_model)
        assert max(sim.peak_memory_bytes) > max(decoupled.static_bytes_per_rank)

    def test_full_search_works(self, graphs, small_cluster, parallel2,
                               cost_model):
        _, decoupled = graphs
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=10, seed=0)
        outcome = searcher.search(decoupled)
        assert validate_schedule(decoupled, outcome.schedule.order) == []
        assert outcome.schedule.predicted.memory_exceeded == []
