"""Tests for the deployment controller and the profiling API."""

import pytest

from repro.core.interleaver import interleave_stages
from repro.core.planner import reference_microbatch
from repro.profiling import ModuleProfile, profile_module
from repro.runtime.compiler import compile_schedule
from repro.runtime.deployment import (
    DeploymentController,
    DeploymentError,
    PipelineWorker,
)
from repro.runtime.actions import ExecutionPlan
from repro.sim.pipeline import simulate_pipeline


@pytest.fixture
def compiled(vlm_graph, small_cluster, parallel2, cost_model):
    inter = interleave_stages(vlm_graph, small_cluster, parallel2, cost_model)
    plan = compile_schedule(vlm_graph, inter.order, small_cluster, parallel2,
                            cost_model)
    sim = simulate_pipeline(vlm_graph, inter.order, small_cluster, parallel2,
                            cost_model)
    return plan, sim


class TestDeploymentController:
    def test_dispatch_executes_and_matches_sim(self, compiled):
        plan, sim = compiled
        controller = DeploymentController(plan.num_ranks)
        record = controller.dispatch(plan)
        assert record.engine.total_ms == pytest.approx(sim.total_ms)
        assert record.version == 1

    def test_versions_advance_per_iteration(self, compiled):
        plan, _ = compiled
        controller = DeploymentController(plan.num_ranks)
        controller.dispatch(plan)
        record = controller.dispatch(plan)
        assert record.version == 2
        # All ranks executed both versions, in order.
        for versions in controller.versions_executed():
            assert versions == [1, 2]

    def test_rank_count_mismatch(self, compiled):
        plan, _ = compiled
        controller = DeploymentController(plan.num_ranks + 1)
        with pytest.raises(DeploymentError, match="ranks"):
            controller.dispatch(plan)

    def test_stale_version_rejected(self):
        worker = PipelineWorker(rank=0)
        worker.receive(3, [])
        with pytest.raises(DeploymentError, match="stale"):
            worker.receive(2, [])

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            DeploymentController(0)

    def test_history_recorded(self, compiled):
        plan, _ = compiled
        controller = DeploymentController(plan.num_ranks)
        controller.dispatch(plan)
        controller.dispatch(plan)
        assert len(controller.history) == 2
        assert controller.history[0].version == 1

    def test_empty_plan_dispatch(self):
        controller = DeploymentController(2)
        record = controller.dispatch(ExecutionPlan(actions_per_rank=[[], []]))
        assert record.engine.total_ms == 0.0


class TestProfileModule:
    def test_splittable_profile(self, tiny_vlm, small_cluster, parallel2,
                                cost_model):
        profile = profile_module(
            tiny_vlm.binding("tiny-vit"), reference_microbatch("vlm"),
            small_cluster, parallel2, cost_model,
        )
        assert profile.chosen_size is not None
        assert profile.points[0].size == 1
        # Efficiency ramps towards 1 as sizes grow.
        assert profile.points[-1].efficiency > profile.points[0].efficiency

    def test_chosen_size_meets_threshold(self, tiny_vlm, small_cluster,
                                         parallel2, cost_model):
        profile = profile_module(
            tiny_vlm.binding("tiny-vit"), reference_microbatch("vlm"),
            small_cluster, parallel2, cost_model, efficiency_threshold=0.9,
        )
        chosen = next(p for p in profile.points
                      if p.size == profile.chosen_size)
        assert chosen.efficiency >= 0.9

    def test_matches_partitioner_choice(self, vlm_setup, small_cluster,
                                        parallel2, cost_model):
        arch, plan, partitioner = vlm_setup
        profile = profile_module(
            arch.binding("tiny-vit"), reference_microbatch("vlm"),
            small_cluster, parallel2, cost_model,
        )
        assert profile.chosen_size == plan.partition("tiny-vit").sub_batch_size

    def test_unsplittable_module(self, tiny_vlm, small_cluster, parallel2,
                                 cost_model):
        profile = profile_module(
            tiny_vlm.binding("tiny-lm"), reference_microbatch("vlm"),
            small_cluster, parallel2, cost_model,
        )
        assert profile.chosen_size is None
        assert len(profile.points) == 1

    def test_empty_reference_rejected(self, tiny_vlm, small_cluster,
                                      parallel2, cost_model):
        from repro.data.packing import controlled_vlm_microbatch

        with pytest.raises(ValueError):
            profile_module(tiny_vlm.binding("tiny-vit"),
                           controlled_vlm_microbatch(0, 0),
                           small_cluster, parallel2, cost_model)

    def test_table_rendering(self, tiny_vlm, small_cluster, parallel2,
                             cost_model):
        profile = profile_module(
            tiny_vlm.binding("tiny-vit"), reference_microbatch("vlm"),
            small_cluster, parallel2, cost_model, max_size=8,
        )
        text = profile.table()
        assert "chosen" in text and "B=  1" in text

    def test_max_size_cap(self, tiny_vlm, small_cluster, parallel2,
                          cost_model):
        profile = profile_module(
            tiny_vlm.binding("tiny-vit"), reference_microbatch("vlm"),
            small_cluster, parallel2, cost_model, max_size=5,
        )
        assert profile.points[-1].size == 5
