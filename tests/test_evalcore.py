"""Differential tests: compiled evaluation core vs the legacy oracle.

The kernel path (:mod:`repro.core.evalcore` + :mod:`repro.sim.kernel`)
must be *semantics-identical* to the legacy interleaver and simulator —
same per-rank orders, timestamps, makespans, memory behaviour and
deadlock detection — on randomized iteration graphs spanning varying
rank counts, microbatch counts, modality mixes and memory regimes.
"""

import threading

import numpy as np
import pytest

from repro.cluster.devices import GPU_H800_80G
from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.evalcore import EvalCore, GraphArrays, RolloutMemo, interleave_kernel
from repro.core.interleaver import interleave_stages
from repro.core.memopt import generate_candidates
from repro.core.searcher import ScheduleSearcher
from repro.core.stages import (
    Direction,
    IterationGraph,
    SegmentKey,
    StagePair,
    StageTask,
)
from repro.sim.costmodel import CostModel, StageCost
from repro.sim.kernel import P2PTable
from repro.sim.pipeline import ScheduleDeadlockError, simulate_pipeline

CLUSTER = ClusterSpec(gpu=GPU_H800_80G, gpus_per_node=4, num_nodes=2)
MODULES = ("vit", "llm", "dit")


def random_graph(rng: np.random.Generator) -> IterationGraph:
    """A random multi-modality pipeline iteration graph.

    Per (microbatch, module, sub-microbatch): a forward chain across all
    ranks, then the backward chain in reverse, one stage pair per rank —
    the same shape the graph builder produces, with randomized latencies,
    residencies, P2P payloads and memory limits (loose, tight, or
    infeasible, to exercise gating and the forced-progress fallback).
    """
    num_ranks = int(rng.integers(1, 5))
    microbatches = int(rng.integers(1, 4))
    modules = list(rng.permutation(MODULES)[: rng.integers(1, 3)])
    stages, pairs = [], []
    for mb in range(microbatches):
        for module in modules:
            for sub in range(int(rng.integers(1, 3))):
                chain_pairs = []
                for rank in range(num_ranks):
                    fw = float(rng.uniform(1.0, 20.0))
                    act = float(rng.uniform(0.0, 400.0))
                    cost = StageCost(
                        forward_ms=fw,
                        backward_ms=fw * float(rng.uniform(1.0, 3.0)),
                        act_bytes=act,
                        act_ckpt_bytes=act / 8.0,
                        recompute_ms=fw,
                        offload_ms=fw / 2.0,
                        p2p_bytes=0.0,
                    )
                    pair = StagePair(
                        len(pairs), mb, module, sub, rank, rank=rank,
                        num_layers=int(rng.integers(1, 5)), cost=cost,
                    )
                    pairs.append(pair)
                    chain_pairs.append(pair)
                prev = None
                for rank in range(num_ranks):
                    p2p = (float(rng.uniform(1e6, 5e8))
                           if rng.random() < 0.5 else 0.0)
                    stages.append(StageTask(
                        len(stages),
                        SegmentKey(mb, module, sub, rank, Direction.FORWARD),
                        rank, chain_pairs[rank].pair_id,
                        deps=() if prev is None else (prev,),
                        p2p_bytes=p2p if prev is not None else 0.0,
                    ))
                    prev = len(stages) - 1
                for rank in reversed(range(num_ranks)):
                    p2p = (float(rng.uniform(1e6, 5e8))
                           if rng.random() < 0.5 else 0.0)
                    stages.append(StageTask(
                        len(stages),
                        SegmentKey(mb, module, sub, rank, Direction.BACKWARD),
                        rank, chain_pairs[rank].pair_id,
                        deps=(prev,),
                        p2p_bytes=p2p,
                    ))
                    prev = len(stages) - 1
    static = [float(rng.uniform(0.0, 200.0)) for _ in range(num_ranks)]
    worst = list(static)
    for pair in pairs:
        worst[pair.rank] += pair.cost.act_bytes
    regime = rng.random()
    if regime < 0.4:
        limit = 1e12  # loose
    elif regime < 0.8:
        limit = max(static) + float(rng.uniform(400.0, 900.0))  # tight
    else:
        limit = max(static) + float(rng.uniform(10.0, 300.0))  # may force
    return IterationGraph(num_ranks, stages, pairs, static, limit)


def _parallel(graph: IterationGraph) -> ParallelConfig:
    return ParallelConfig(dp=1, tp=1, pp=graph.num_ranks)


def assert_interleave_equal(graph, ordering_priorities, cost_model,
                            respect_memory=True, greedy_fill=True):
    parallel = _parallel(graph)
    legacy = interleave_stages(
        graph, CLUSTER, parallel, cost_model,
        respect_memory=respect_memory, priorities=ordering_priorities,
        greedy_fill=greedy_fill,
    )
    arrays = GraphArrays(graph, CLUSTER, parallel, cost_model)
    kernel = interleave_kernel(
        arrays, list(ordering_priorities),
        respect_memory=respect_memory, greedy_fill=greedy_fill,
    )
    assert kernel.order == legacy.order
    assert kernel.start_ms == legacy.start_ms
    assert kernel.end_ms == legacy.end_ms
    assert kernel.total_ms == legacy.total_ms
    assert kernel.memory_forced == legacy.memory_forced
    return legacy


def assert_sim_equal(graph, order, cost_model):
    parallel = _parallel(graph)
    legacy = simulate_pipeline(graph, order, CLUSTER, parallel, cost_model,
                               legacy=True)
    kernel = simulate_pipeline(graph, order, CLUSTER, parallel, cost_model)
    assert kernel.start_ms == legacy.start_ms
    assert kernel.end_ms == legacy.end_ms
    assert kernel.total_ms == legacy.total_ms
    assert kernel.busy_ms_per_rank == legacy.busy_ms_per_rank
    assert kernel.bubble_ratio == legacy.bubble_ratio
    assert kernel.peak_memory_bytes == legacy.peak_memory_bytes
    assert kernel.memory_timeline == legacy.memory_timeline
    assert kernel.memory_exceeded == legacy.memory_exceeded


class TestRandomizedDifferential:
    """Kernel == legacy on >= 50 randomized graphs (acceptance gate)."""

    def test_interleaver_and_simulator_match_legacy(self):
        rng = np.random.default_rng(1234)
        forced_seen = 0
        for trial in range(60):
            graph = random_graph(rng)
            cost_model = CostModel()
            n = len(graph.stages)
            priorities = [int(p) for p in rng.integers(0, n, size=n)]
            result = assert_interleave_equal(graph, priorities, cost_model)
            forced_seen += int(result.memory_forced)
            assert_sim_equal(graph, result.order, cost_model)
            # Natural per-rank uid order is topological too.
            natural = [
                [s.uid for s in graph.stages if s.rank == r]
                for r in range(graph.num_ranks)
            ]
            assert_sim_equal(graph, natural, cost_model)
        # The random memory regimes must actually exercise the
        # forced-progress fallback, not only the happy path.
        assert forced_seen > 0

    def test_ablation_flags_match_legacy(self):
        rng = np.random.default_rng(77)
        for trial in range(12):
            graph = random_graph(rng)
            cost_model = CostModel()
            n = len(graph.stages)
            priorities = [int(p) for p in rng.integers(0, n, size=n)]
            assert_interleave_equal(graph, priorities, cost_model,
                                    respect_memory=False)
            assert_interleave_equal(graph, priorities, cost_model,
                                    greedy_fill=False)
            assert_interleave_equal(graph, priorities, cost_model,
                                    respect_memory=False, greedy_fill=False)

    def test_memopt_candidates_regime(self):
        """Differential equality also under selected memory strategies."""
        rng = np.random.default_rng(99)
        for trial in range(8):
            graph = random_graph(rng)
            generate_candidates(graph)
            graph.select_most_memory_efficient()
            cost_model = CostModel()
            n = len(graph.stages)
            priorities = [int(p) for p in rng.integers(0, n, size=n)]
            result = assert_interleave_equal(graph, priorities, cost_model)
            assert_sim_equal(graph, result.order, cost_model)


class TestBuilderGraphDifferential:
    """Kernel == legacy on real graph-builder output (VLM and T2V)."""

    def test_vlm_graph(self, vlm_graph, small_cluster, parallel2, cost_model):
        rng = np.random.default_rng(3)
        core = EvalCore(vlm_graph, small_cluster, parallel2, cost_model)
        groups = list(vlm_graph.groups().keys())
        for _ in range(5):
            ordering = list(groups)
            rng.shuffle(ordering)
            legacy = interleave_stages(
                vlm_graph, small_cluster, parallel2, cost_model,
                priorities=core.arrays.priorities(ordering),
            )
            kernel = core.interleave(ordering)
            assert kernel.order == legacy.order
            assert kernel.total_ms == legacy.total_ms
            assert core.evaluate(ordering) == legacy.total_ms

    def test_t2v_graph(self, t2v_graph, small_cluster, parallel2, cost_model):
        core = EvalCore(t2v_graph, small_cluster, parallel2, cost_model)
        ordering = list(t2v_graph.groups().keys())
        legacy = interleave_stages(
            t2v_graph, small_cluster, parallel2, cost_model,
            priorities=core.arrays.priorities(ordering),
        )
        kernel = core.interleave(ordering)
        assert kernel.order == legacy.order
        assert kernel.start_ms == legacy.start_ms

    def test_full_search_parity(self, vlm_setup, small_cluster, parallel2,
                                cost_model):
        """Identical seeds/budget: kernel and legacy searches agree on
        the winning order, makespan and evaluation count."""
        from repro.core.graphbuilder import build_iteration_graph
        from repro.data.workload import vlm_workload

        arch, plan, partitioner = vlm_setup
        batch = vlm_workload(3, seed=5).next_batch()

        def build():
            return build_iteration_graph(
                arch, plan, batch, small_cluster, parallel2, cost_model,
                partitioner=partitioner,
            )

        for enable_memopt in (False, True):
            kernel_searcher = ScheduleSearcher(
                small_cluster, parallel2, cost_model,
                budget_evaluations=12, seed=7, enable_memopt=enable_memopt)
            legacy_searcher = ScheduleSearcher(
                small_cluster, parallel2, cost_model,
                budget_evaluations=12, seed=7, enable_memopt=enable_memopt,
                use_kernel=False)
            kernel_result = kernel_searcher.search(build())
            legacy_result = legacy_searcher.search(build())
            assert kernel_result.total_ms == legacy_result.total_ms
            assert kernel_result.schedule.order == legacy_result.schedule.order
            assert kernel_result.ordering == legacy_result.ordering
            assert kernel_result.evaluations == legacy_result.evaluations
            assert legacy_result.memo_hits == 0

    def test_search_parity_across_strategies(self, vlm_graph, small_cluster,
                                             parallel2, cost_model):
        for strategy in ("dfs", "random", "natural"):
            kernel_searcher = ScheduleSearcher(
                small_cluster, parallel2, cost_model, strategy=strategy,
                budget_evaluations=10, seed=3, enable_memopt=False)
            legacy_searcher = ScheduleSearcher(
                small_cluster, parallel2, cost_model, strategy=strategy,
                budget_evaluations=10, seed=3, enable_memopt=False,
                use_kernel=False)
            # Same graph object is fine: searches are read-only apart
            # from strategy selections, which both paths reset.
            kernel_result = kernel_searcher.search(vlm_graph)
            legacy_result = legacy_searcher.search(vlm_graph)
            assert kernel_result.total_ms == legacy_result.total_ms
            assert kernel_result.schedule.order == legacy_result.schedule.order


class TestSimulatorKernel:
    def test_deadlock_detected_by_both_engines(self):
        from tests.test_pipeline_sim import two_rank_graph

        graph = two_rank_graph()
        parallel = ParallelConfig(dp=1, tp=1, pp=2)
        bad_order = [[3, 0], [1, 2]]  # rank 0 runs bw before its fw
        with pytest.raises(ScheduleDeadlockError) as kernel_err:
            simulate_pipeline(graph, bad_order, CLUSTER, parallel)
        with pytest.raises(ScheduleDeadlockError) as legacy_err:
            simulate_pipeline(graph, bad_order, CLUSTER, parallel,
                              legacy=True)
        assert "waiting stages" in str(kernel_err.value)
        assert "waiting stages" in str(legacy_err.value)

    def test_jitter_forces_retry_engine(self):
        from tests.test_pipeline_sim import two_rank_graph

        graph = two_rank_graph(fw=10.0, bw=20.0)
        parallel = ParallelConfig(dp=1, tp=1, pp=2)
        result = simulate_pipeline(
            graph, [[0, 3], [1, 2]], CLUSTER, parallel,
            jitter=lambda uid, ms: ms * 2.0,
        )
        assert result.total_ms == pytest.approx(120.0)

    def test_shared_p2p_table_consistency(self):
        parallel = ParallelConfig(dp=1, tp=1, pp=4)
        cost_model = CostModel()
        table = P2PTable(CLUSTER, parallel, cost_model)
        for src in range(4):
            for dst in range(4):
                direct = (0.0 if src == dst else cost_model.p2p_latency_ms(
                    1e8, CLUSTER.p2p_bandwidth(parallel, src, dst)))
                assert table.latency_ms(src, dst, 1e8) == direct
        assert table.latency_ms(0, 1, 0.0) == 0.0
        # Memoised: the same key returns the identical cached value.
        assert table.latency_ms(0, 1, 1e8) is table.latency_ms(0, 1, 1e8)


class TestGraphArrays:
    def test_refresh_tracks_strategy_changes(self, vlm_graph, small_cluster,
                                             parallel2, cost_model):
        generate_candidates(vlm_graph)
        arrays = GraphArrays(vlm_graph, small_cluster, parallel2, cost_model)
        before = list(arrays.latency)
        vlm_graph.select_most_memory_efficient()
        arrays.refresh()
        expected = [vlm_graph.latency_ms(s) for s in vlm_graph.stages]
        assert arrays.latency == expected
        assert arrays.latency != before  # lean strategies add latency

    def test_priorities_match_searcher(self, vlm_graph, small_cluster,
                                       parallel2, cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model)
        arrays = GraphArrays(vlm_graph, small_cluster, parallel2, cost_model)
        groups = list(vlm_graph.groups().keys())
        rng = np.random.default_rng(0)
        ordering = list(groups)
        rng.shuffle(ordering)
        assert arrays.priorities(ordering) == searcher._priorities_array(
            vlm_graph, ordering)
        # Partial orderings leave uncovered groups at priority 0.
        partial = ordering[: len(ordering) // 2]
        assert arrays.priorities(partial) == searcher._priorities_array(
            vlm_graph, partial)


class TestRolloutMemo:
    def test_memo_hits_reported(self, vlm_graph, small_cluster, parallel2,
                                cost_model):
        core = EvalCore(vlm_graph, small_cluster, parallel2, cost_model)
        ordering = list(vlm_graph.groups().keys())
        first = core.evaluate(ordering)
        second = core.evaluate(ordering)
        assert first == second
        assert core.memo.hits == 1
        assert core.memo.misses == 1
        assert len(core.memo) == 1
        core.refresh()  # stale scores dropped
        assert len(core.memo) == 0

    def test_memo_thread_safety(self, vlm_graph, small_cluster, parallel2,
                                cost_model):
        """Concurrent workers share one memo: every lookup is counted,
        every returned score matches the single-threaded value."""
        core = EvalCore(vlm_graph, small_cluster, parallel2, cost_model)
        groups = list(vlm_graph.groups().keys())
        rng = np.random.default_rng(11)
        orderings = []
        for _ in range(10):
            ordering = list(groups)
            rng.shuffle(ordering)
            orderings.append(ordering)
        expected = {tuple(o): interleave_stages(
            vlm_graph, small_cluster, parallel2, cost_model,
            priorities=core.arrays.priorities(o)).total_ms
            for o in orderings}

        per_thread = 60
        num_threads = 8
        errors = []

        def worker(seed: int) -> None:
            local = np.random.default_rng(seed)
            try:
                for _ in range(per_thread):
                    ordering = orderings[int(local.integers(len(orderings)))]
                    score = core.evaluate(ordering)
                    if score != expected[tuple(ordering)]:
                        errors.append((ordering, score))
            except Exception as exc:  # noqa: BLE001 — surface in assert
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(num_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        memo = core.memo
        assert memo.lookups == per_thread * num_threads
        assert memo.hits + memo.misses == memo.lookups
        # Racing threads may compute a key twice, but the table holds
        # exactly one entry per distinct ordering.
        assert len(memo) == len(orderings)
        assert memo.hits >= memo.lookups - 2 * len(orderings)

    def test_bare_memo(self):
        memo = RolloutMemo()
        assert memo.get(("a",)) is None
        memo.put(("a",), 1.5)
        assert memo.get(("a",)) == 1.5
        assert (memo.hits, memo.misses) == (1, 1)
        memo.clear()
        assert len(memo) == 0


class TestEmptyAndEdgeGraphs:
    def test_single_rank_single_stage(self):
        pair = StagePair(0, 0, "m", 0, 0, rank=0, num_layers=1,
                         cost=StageCost(5.0, 10.0, 10.0, 1.0, 5.0, 1.0, 0.0))
        stage = StageTask(0, SegmentKey(0, "m", 0, 0, Direction.FORWARD),
                          0, 0, ())
        graph = IterationGraph(1, [stage], [pair], [0.0], 1e12)
        assert_interleave_equal(graph, [0], CostModel())

    def test_kernel_handles_empty_graph(self):
        graph = IterationGraph(2, [], [], [0.0, 0.0], 1e12)
        arrays = GraphArrays(graph, CLUSTER, ParallelConfig(1, 1, 2),
                             CostModel())
        result = interleave_kernel(arrays, [])
        assert result.order == [[], []]
        assert result.total_ms == 0.0
