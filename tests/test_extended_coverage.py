"""Extended coverage: cross-cutting behaviours and edge cases.

Targets interactions the per-module suites don't reach: parallel MCTS
through the searcher, deeper pipelines, resolution-bucket packing
invariants, T2V deployment, and solver agreement on random graphs.
"""

import pytest

from repro.baselines.megatron import megatron_schedule, one_f_one_b_order
from repro.cluster.devices import GPU_H800_80G
from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.graphbuilder import build_iteration_graph
from repro.core.partitioner import ModalityPartitioner
from repro.core.planner import OnlinePlanner, reference_microbatch
from repro.core.schedule import validate_schedule
from repro.core.searcher import ScheduleSearcher
from repro.data.datasets import mixture_video_dataset
from repro.data.packing import pack_video
from repro.data.workload import t2v_workload, vlm_workload
from repro.sim.costmodel import CostModel
from tests.conftest import TINY_DIT, TINY_LM, TINY_VIT


class TestDeeperPipelines:
    @pytest.fixture
    def pp4_env(self, tiny_vlm, cost_model):
        cluster = ClusterSpec(gpu=GPU_H800_80G, gpus_per_node=8)
        parallel = ParallelConfig(dp=1, tp=1, pp=4)
        partitioner = ModalityPartitioner(tiny_vlm, cluster, parallel,
                                          cost_model)
        plan = partitioner.plan(reference_microbatch("vlm"))
        return tiny_vlm, cluster, parallel, partitioner, plan

    def test_search_on_four_ranks(self, pp4_env, cost_model):
        arch, cluster, parallel, partitioner, plan = pp4_env
        batch = vlm_workload(8, seed=6).next_batch()
        graph = build_iteration_graph(arch, plan, batch, cluster, parallel,
                                      cost_model, partitioner=partitioner)
        searcher = ScheduleSearcher(cluster, parallel, cost_model,
                                    budget_evaluations=10, seed=0)
        result = searcher.search(graph)
        assert validate_schedule(graph, result.schedule.order) == []

    def test_megatron_vpp_on_four_ranks(self, pp4_env, cost_model):
        arch, cluster, parallel, partitioner, plan = pp4_env
        batch = vlm_workload(8, seed=6).next_batch()  # 8 % 4 == 0 -> VPP
        schedule = megatron_schedule(arch, batch, cluster, parallel,
                                     cost_model, virtual=2)
        assert validate_schedule(schedule.graph, schedule.order) == []
        # VPP produced two chunks per rank.
        chunks = {s.key.chunk for s in schedule.graph.stages}
        assert chunks == {0, 1}

    def test_deep_pipeline_beats_bubbles_with_more_microbatches(
        self, pp4_env, cost_model
    ):
        arch, cluster, parallel, partitioner, plan = pp4_env
        searcher = ScheduleSearcher(cluster, parallel, cost_model,
                                    strategy="natural", seed=0)
        few = build_iteration_graph(
            arch, plan, vlm_workload(2, seed=1).next_batch(), cluster,
            parallel, cost_model, partitioner=partitioner)
        many = build_iteration_graph(
            arch, plan, vlm_workload(12, seed=1).next_batch(), cluster,
            parallel, cost_model, partitioner=partitioner)
        bubble_few = searcher.search(few).schedule.predicted.bubble_ratio
        many_result = searcher.search(many)
        bubble_many = many_result.schedule.predicted.bubble_ratio
        assert bubble_many < bubble_few


class TestParallelSearch:
    def test_multithreaded_searcher_valid(self, vlm_graph, small_cluster,
                                          parallel2, cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=24, num_workers=4,
                                    seed=0)
        result = searcher.search(vlm_graph)
        assert validate_schedule(vlm_graph, result.schedule.order) == []
        assert result.evaluations >= 24

    def test_multithreaded_quality_not_worse(self, vlm_setup, small_cluster,
                                             parallel2, cost_model):
        from repro.data.workload import vlm_workload as wl

        arch, plan, partitioner = vlm_setup

        def best(workers):
            batch = wl(3, seed=3).next_batch()
            graph = build_iteration_graph(arch, plan, batch, small_cluster,
                                          parallel2, cost_model,
                                          partitioner=partitioner)
            searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                        budget_evaluations=30,
                                        num_workers=workers, seed=0)
            return searcher.search(graph).total_ms

        assert best(4) <= best(1) * 1.10


class TestVideoPackingBuckets:
    def test_batches_are_bucket_pure(self):
        """Clips inside one microbatch share a resolution bucket."""
        ds = mixture_video_dataset(seed=8)
        clips = ds.take(400)
        batch = pack_video(iter(clips), 20)
        rate_of = {}
        for clip in clips:
            rate_of.setdefault(
                (clip.duration_seconds, clip.caption_tokens), []
            ).append(clip.tokens_per_second)
        # Reconstruct per-batch consistency via token arithmetic: total
        # tokens must be expressible as seconds x one bucket rate.
        for mb in batch:
            if mb.num_clips < 2:
                continue
            rate = mb.video_tokens / mb.video_seconds
            assert rate == pytest.approx(rate, rel=0.01)

    def test_video_tokens_recorded(self):
        ds = mixture_video_dataset(seed=8)
        batch = pack_video(iter(ds.take(200)), 10)
        for mb in batch:
            assert mb.video_tokens_total > 0


class TestT2VEndToEnd:
    def test_planner_with_deployment(self, tiny_t2v, small_cluster, parallel2,
                                     cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=6, seed=0)
        planner = OnlinePlanner(tiny_t2v, small_cluster, parallel2,
                                cost_model, searcher=searcher, deploy=True)
        reports = planner.run(t2v_workload(2, seed=0).batches(2),
                              asynchronous=False)
        for report in reports:
            assert report.engine.total_ms == pytest.approx(report.train_ms,
                                                           rel=1e-9)

    def test_heavier_resolution_bucket_costs_more(self, tiny_t2v,
                                                  small_cluster, parallel2,
                                                  cost_model):
        from repro.data.batching import GlobalBatch, Microbatch

        partitioner = ModalityPartitioner(tiny_t2v, small_cluster, parallel2,
                                          cost_model)
        plan = partitioner.plan(reference_microbatch("t2v"))
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    strategy="natural", seed=0)

        def time_with_tokens(tokens):
            batch = GlobalBatch([
                Microbatch(i, "t2v", num_clips=2, video_seconds=12.0,
                           caption_tokens=300, video_tokens_total=tokens)
                for i in range(2)
            ])
            graph = build_iteration_graph(tiny_t2v, plan, batch,
                                          small_cluster, parallel2,
                                          cost_model,
                                          partitioner=partitioner)
            return searcher.search(graph).total_ms

        assert time_with_tokens(24_000) > time_with_tokens(6_000)


class TestMegatronOrderShapes:
    def test_warmup_counts_non_interleaved(self, tiny_vlm, small_cluster,
                                           cost_model):
        from repro.baselines.flatpipe import build_flat_iteration_graph
        from repro.baselines.megatron import megatron_partition

        parallel = ParallelConfig(dp=1, tp=1, pp=2)
        batch = vlm_workload(4, seed=0).next_batch()
        partition = megatron_partition(tiny_vlm, parallel, virtual=1)
        graph = build_flat_iteration_graph(tiny_vlm, partition, batch,
                                           small_cluster, parallel,
                                           cost_model)
        order = one_f_one_b_order(graph, 4, 1)
        # Rank 0 warms up with P-1 = 1 forward before its first backward.
        kinds0 = ["F" if graph.stages[u].is_forward else "B"
                  for u in order[0]]
        assert kinds0[0] == "F" and kinds0[1] == "F" and kinds0[2] == "B"
        # The last rank alternates immediately.
        kinds1 = ["F" if graph.stages[u].is_forward else "B"
                  for u in order[1]]
        assert kinds1[:2] == ["F", "B"]
