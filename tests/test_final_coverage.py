"""Final coverage sweep: small behaviours not reached elsewhere."""

import time

import pytest

from repro.core.mcts import mcts_reorder, random_reorder
from repro.core.planner import OnlinePlanner
from repro.core.searcher import ScheduleSearcher
from repro.core.stages import Direction, GroupKey
from repro.core.visualize import ascii_timeline
from repro.data.workload import vlm_workload
from repro.solver.mckp import mckp_min_latency


class TestDirectionAndAccessors:
    def test_direction_opposite(self):
        assert Direction.FORWARD.opposite is Direction.BACKWARD
        assert Direction.BACKWARD.opposite is Direction.FORWARD

    def test_pair_accessor(self, vlm_graph):
        stage = vlm_graph.stages[0]
        assert vlm_graph.pair(stage) is vlm_graph.pairs[stage.pair_id]

    def test_stage_pair_candidate_override(self, vlm_graph):
        pair = vlm_graph.pairs[0]
        assert pair.forward_ms(0) == pair.cost.forward_ms
        assert pair.resident_bytes(0) == pair.candidates[0].resident_bytes


class TestMctsTimeBudget:
    def test_wall_clock_budget_stops_search(self):
        groups = [GroupKey(i, "m", Direction.FORWARD) for i in range(10)]

        def slow_eval(ordering):
            time.sleep(0.01)
            return float(len(ordering))

        t0 = time.monotonic()
        result = mcts_reorder(groups, slow_eval, budget_evaluations=10_000,
                              time_budget_s=0.25, seed=0)
        elapsed = time.monotonic() - t0
        assert elapsed < 3.0
        assert result.evaluations < 10_000

    def test_random_reorder_time_budget(self):
        groups = [GroupKey(i, "m", Direction.FORWARD) for i in range(6)]

        def slow_eval(ordering):
            time.sleep(0.01)
            return 1.0

        result = random_reorder(groups, slow_eval, budget_evaluations=10_000,
                                time_budget_s=0.2, seed=0)
        assert result.evaluations < 10_000


class TestPlannerStall:
    def test_slow_search_reports_stall(self, tiny_vlm, small_cluster,
                                       parallel2, cost_model):
        """If search cannot hide behind the previous iteration, the
        planner must report a positive stall."""
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=4, seed=0)
        planner = OnlinePlanner(tiny_vlm, small_cluster, parallel2,
                                cost_model, searcher=searcher)
        original = planner.plan_iteration

        def slow_plan(batch):
            time.sleep(0.15)
            return original(batch)

        planner.plan_iteration = slow_plan
        reports = planner.run(vlm_workload(2, seed=0).batches(2),
                              asynchronous=True)
        # Simulated iterations are far shorter than 0.15 s of wall time.
        assert reports[1].stall_seconds > 0.0


class TestMckpEdges:
    def test_non_integral_inputs_use_quantisation(self):
        sel, lat = mckp_min_latency(
            [[3.0, 1.0]], [[0.25, 0.75]], memory_limit=0.8,
            resolution=64,
        )
        assert sel == [1]
        assert lat == 1.0

    def test_zero_budget_zero_weights(self):
        sel, lat = mckp_min_latency([[2.0, 5.0]], [[0.0, 0.0]], 0.0)
        assert sel == [0] and lat == 2.0


class TestVisualizeEdges:
    def test_empty_schedule_message(self):
        class FakeResult:
            total_ms = 0.0

        class FakeGraph:
            num_ranks = 1
            stages = []

        assert "empty" in ascii_timeline(FakeGraph(), FakeResult())


class TestGroupKeyDerivation:
    def test_segment_key_group(self, vlm_graph):
        for stage in vlm_graph.stages[:10]:
            group = stage.key.group
            assert group.microbatch == stage.key.microbatch
            assert group.module == stage.key.module
            assert group.direction == stage.key.direction

    def test_groups_cover_all_stages(self, vlm_graph):
        groups = vlm_graph.groups()
        covered = set()
        for group in groups.values():
            covered.update(group.segment_keys)
        stage_keys = {s.key for s in vlm_graph.stages}
        assert covered == stage_keys
