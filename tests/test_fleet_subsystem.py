"""The sharded planning fleet (src/repro/fleet/).

* **Ring** — deterministic, balanced consistent hashing; preference
  order is the fleet-wide failover contract.
* **Stats merging** — :meth:`ServiceStats.merge` sums counters and
  recomputes percentiles from the union of sample windows.
* **Connection lifecycle** — :class:`ServiceConnection` handshakes,
  reconnects, and closes exactly once; ``PlanServiceClient.close`` is
  idempotent.
* **Routed clients** — every client maps a signature to the same shard
  (coalescing locality), failover walks the ring loudly, stats
  aggregate across shards, and the shared disk tier serves restarts.
* **Launcher** — real shard subprocesses: spawn, ready-wait, crash
  restart, graceful drain.
"""

import os
import signal
import time
import warnings

import pytest

from repro.core.cachetier import DiskCacheTier
from repro.core.plancache import PlanCache
from repro.core.planner import OnlinePlanner
from repro.core.searcher import ScheduleSearcher
from repro.data.batching import GlobalBatch
from repro.data.packing import controlled_vlm_microbatch
from repro.fleet import (
    FleetClient,
    FleetConfig,
    FleetFailoverWarning,
    HashRing,
    PlanFleet,
    fleet_stats,
)
from repro.fleet.ring import ring_point
from repro.service import (
    PlanService,
    PlanServiceClient,
    PlanServiceServer,
    ServiceClosedError,
    ServiceConnection,
)
from repro.service.stats import LATENCY_WINDOW, ServiceStats


def controlled_batch(image_counts, start_index=0):
    return GlobalBatch([
        controlled_vlm_microbatch(index=start_index + i, num_images=count)
        for i, count in enumerate(image_counts)
    ])


class TestHashRing:
    NODES = ["uds:///tmp/a.sock", "uds:///tmp/b.sock", "uds:///tmp/c.sock"]

    def test_deterministic_across_instances(self):
        a = HashRing(self.NODES)
        b = HashRing(list(reversed(self.NODES)))  # order must not matter
        digests = [f"{i:064x}" for i in range(200)]
        assert [a.node_for(d) for d in digests] == \
            [b.node_for(d) for d in digests]

    def test_ring_point_is_stable(self):
        # sha256-derived, not hash()-derived: survives PYTHONHASHSEED.
        assert ring_point("x") == ring_point("x")
        assert ring_point("x") != ring_point("y")

    def test_balance(self):
        ring = HashRing(self.NODES)
        counts = {node: 0 for node in self.NODES}
        for i in range(3000):
            counts[ring.node_for(f"{i:064x}")] += 1
        for node, count in counts.items():
            assert count > 300, f"{node} starved: {counts}"

    def test_preference_starts_at_owner_and_covers_all(self):
        ring = HashRing(self.NODES)
        for i in range(50):
            digest = f"{i:064x}"
            order = ring.preference(digest)
            assert order[0] == ring.node_for(digest)
            assert sorted(order) == sorted(self.NODES)

    def test_preference_limit(self):
        ring = HashRing(self.NODES)
        assert len(ring.preference("0" * 64, limit=2)) == 2

    def test_single_node(self):
        ring = HashRing(["only"])
        assert ring.node_for("f" * 64) == "only"
        assert ring.preference("f" * 64) == ["only"]

    def test_minimal_reshuffle_on_node_loss(self):
        full = HashRing(self.NODES)
        reduced = HashRing(self.NODES[:2])
        digests = [f"{i:064x}" for i in range(1000)]
        moved = sum(
            1 for d in digests
            if full.node_for(d) != reduced.node_for(d)
            and full.node_for(d) in self.NODES[:2]
        )
        # Consistent hashing: keys owned by surviving nodes stay put.
        assert moved == 0

    def test_rejects_bad_node_sets(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])


class TestStatsMerge:
    def _stats(self, submitted, latencies=()):
        stats = ServiceStats()
        stats.count("submitted", submitted)
        stats.count("searches", 1)
        for latency in latencies:
            stats.record_latency(latency, 0.0)
        return stats

    def test_counters_sum(self):
        merged = ServiceStats.merge([self._stats(3), self._stats(5)])
        assert merged.submitted == 8
        assert merged.searches == 2

    def test_max_queue_depth_is_max(self):
        a, b = ServiceStats(), ServiceStats()
        a.queue_changed(3)
        b.queue_changed(7)
        b.queue_changed(0)
        merged = ServiceStats.merge([a, b])
        assert merged.max_queue_depth == 7
        assert merged.queue_depth == 3  # 3 + 0

    def test_percentiles_from_union_of_samples(self):
        a = self._stats(1, latencies=[0.1] * 10)
        b = self._stats(1, latencies=[0.9] * 10)
        merged = ServiceStats.merge([a, b])
        assert merged.latency_percentile_s(50) == pytest.approx(0.5, abs=0.41)
        assert merged.latency_percentile_s(99) == pytest.approx(0.9, abs=0.01)

    def test_empty_merge(self):
        merged = ServiceStats.merge([])
        assert merged.submitted == 0

    def test_merge_window_stays_bounded(self):
        parts = [self._stats(1, latencies=[0.1] * LATENCY_WINDOW)
                 for _ in range(3)]
        merged = ServiceStats.merge(parts)
        assert len(merged._latencies_s) == LATENCY_WINDOW

    def test_snapshot_round_trip_with_samples(self):
        stats = self._stats(4, latencies=[0.2, 0.4])
        clone = ServiceStats.from_snapshot(stats.snapshot(
            include_samples=True))
        for name in ServiceStats.COUNTERS:
            assert getattr(clone, name) == getattr(stats, name)
        assert clone.latency_percentile_s(50) == \
            stats.latency_percentile_s(50)

    def test_plain_snapshot_ships_no_samples(self):
        snap = self._stats(1, latencies=[0.2]).snapshot()
        assert "latency_samples_s" not in snap


@pytest.fixture
def make_planner(tiny_vlm, small_cluster, parallel2, cost_model):
    def factory(budget=8, disk_tier=None, cache_size=32):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=budget, seed=0)
        cache = (PlanCache(capacity=cache_size, disk_tier=disk_tier)
                 if disk_tier is not None else None)
        return OnlinePlanner(tiny_vlm, small_cluster, parallel2, cost_model,
                             searcher=searcher, plan_cache=cache)
    return factory


@pytest.fixture
def shard_fleet(tmp_path, make_planner):
    """In-process shard servers on UDS sharing one disk tier.

    Yields a ``start(n)`` factory returning the shard addresses; every
    server is torn down at the end of the test.
    """
    started = []

    def start(n=2, disk_tier=None, jobs=("vlm",)):
        addresses = []
        for i in range(n):
            service = PlanService(num_workers=2, plan_cache=PlanCache(
                capacity=32, disk_tier=disk_tier))
            for job in jobs:
                service.register_job(job, planner=make_planner())
            server = PlanServiceServer(
                service, uds=str(tmp_path / f"shard-{i}.sock"),
                result_timeout_s=60.0,
            )
            started.append((service, server))
            addresses.append(server.address)
        return addresses

    yield start
    for service, server in started:
        server.close(timeout=10.0)
        service.close()


class TestServiceConnection:
    def test_context_manager_lifecycle(self, shard_fleet):
        (address,) = shard_fleet(n=1)
        with ServiceConnection(address, expect_job="vlm") as conn:
            assert not conn.connected  # lazy
            assert conn.client().ping()["jobs"] == ["vlm"]
            assert conn.connected
        assert not conn.connected

    def test_close_retires(self, shard_fleet):
        (address,) = shard_fleet(n=1)
        conn = ServiceConnection(address)
        conn.client().ping()
        conn.close()
        conn.close()  # idempotent
        with pytest.raises(ServiceClosedError):
            conn.client()

    def test_handshake_rejects_unknown_job(self, shard_fleet):
        (address,) = shard_fleet(n=1)
        conn = ServiceConnection(address, expect_job="nope")
        with pytest.raises(Exception, match="nope"):
            conn.client()
        conn.close()

    def test_client_close_is_idempotent(self, shard_fleet):
        (address,) = shard_fleet(n=1)
        client = PlanServiceClient(address)
        client.ping()
        client.close()
        client.close()  # second close must be a no-op, not an error


class TestFleetClient:
    def _client(self, addresses, make_planner, batches=(), replica=0,
                **kwargs):
        return FleetClient(addresses, "vlm", replica, list(batches),
                           planner=make_planner(), timeout_s=30.0,
                           **kwargs)

    def test_routing_is_signature_stable(self, shard_fleet, make_planner):
        addresses = shard_fleet(n=3)
        batches = [controlled_batch([n]) for n in (2, 4, 8)]
        a = self._client(addresses, make_planner, batches, replica=0)
        b = self._client(addresses, make_planner, batches, replica=1)
        a.run()
        b.run()
        assert not a.errors and not b.errors
        route_a = dict(a.routes)
        route_b = dict(b.routes)
        assert route_a == route_b  # identical signature -> same shard
        a.close()
        b.close()

    def test_fleet_plans_match_local_plans(self, shard_fleet, make_planner):
        addresses = shard_fleet(n=2)
        batches = [controlled_batch([4, 8]), controlled_batch([2, 2])]
        client = self._client(addresses, make_planner, batches)
        client.run()
        assert not client.errors
        local = make_planner()
        for record, batch in zip(client.records, batches):
            reference = local.plan_iteration(batch)
            assert record.predicted_ms == pytest.approx(
                reference.total_ms, rel=1e-12)
        client.close()

    def test_stats_aggregate_across_shards(self, shard_fleet, make_planner):
        addresses = shard_fleet(n=2)
        batches = [controlled_batch([n]) for n in (2, 4, 8, 16)]
        client = self._client(addresses, make_planner, batches)
        client.run()
        stats = client.stats()
        assert stats["reachable"] == 2
        assert stats["service"]["searches"] == len(batches)
        assert stats["service"]["completed"] == len(batches)
        assert set(stats["shards"]) == set(addresses)
        client.close()

    def test_module_level_fleet_stats(self, shard_fleet, make_planner):
        addresses = shard_fleet(n=2)
        client = self._client(addresses, make_planner,
                              [controlled_batch([4])])
        client.run()
        client.close()
        stats = fleet_stats(addresses)
        assert stats["reachable"] == 2
        assert stats["service"]["searches"] == 1

    def test_failover_walks_ring_with_warning(self, shard_fleet,
                                              make_planner, tmp_path):
        addresses = shard_fleet(n=2)
        batch = controlled_batch([4, 8])
        probe = self._client(addresses, make_planner)
        prepared = probe.planner.prepare(batch)
        owner = probe.shard_for(prepared.signature.digest)
        probe.close()

        os.unlink(owner.replace("uds://", ""))  # make the owner vanish
        client = self._client(addresses, make_planner, [batch])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            client.run()
        assert not client.errors
        assert client.failovers == 1
        assert any(issubclass(w.category, FleetFailoverWarning)
                   for w in caught)
        (survivor,) = set(a for a in addresses if a != owner)
        assert client.routes[0][1] == survivor
        client.close()

    def test_no_failover_surfaces_error(self, shard_fleet, make_planner):
        addresses = shard_fleet(n=2)
        batch = controlled_batch([4, 8])
        probe = self._client(addresses, make_planner)
        prepared = probe.planner.prepare(batch)
        owner = probe.shard_for(prepared.signature.digest)
        probe.close()

        os.unlink(owner.replace("uds://", ""))
        client = self._client(addresses, make_planner, [batch],
                              failover=False)
        client.run()
        assert len(client.errors) == 1
        assert client.failovers == 0
        client.close()

    def test_shared_disk_tier_across_shards(self, shard_fleet, make_planner,
                                            tmp_path):
        tier = DiskCacheTier(str(tmp_path / "tier"))
        addresses = shard_fleet(n=2, disk_tier=tier)
        batches = [controlled_batch([n]) for n in (2, 4, 8)]
        writer = self._client(addresses, make_planner, batches)
        writer.run()
        assert not writer.errors
        writer.close()
        assert len(tier.digests()) == len(batches)

        # A second fleet generation on the same tier: every plan is a
        # disk hit, zero searches.
        fresh = shard_fleet(n=2, disk_tier=tier)
        reader = self._client(fresh, make_planner, batches)
        reader.run()
        assert not reader.errors
        stats = fleet_stats(fresh)
        assert stats["service"]["searches"] == 0
        assert stats["service"]["disk_hits"] == len(batches)
        for record_w, record_r in zip(writer.records, reader.records):
            assert record_r.predicted_ms == record_w.predicted_ms
        reader.close()


class TestLauncher:
    """Real shard subprocesses — kept to one small config for speed."""

    def _config(self, tmp_path, **kwargs):
        return FleetConfig(
            models=["VLM-S"], shards=2,
            cache_dir=str(tmp_path / "cache"),
            runtime_dir=str(tmp_path / "run"),
            budget=4, workers=1, queue=16, cache_size=16,
            **kwargs,
        )

    def test_start_serve_stop(self, tmp_path):
        config = self._config(tmp_path)
        with PlanFleet(config) as fleet:
            assert fleet.alive_count() == 2
            for address in fleet.addresses:
                client = PlanServiceClient(address, timeout_s=10.0)
                assert client.ping()["jobs"] == ["VLM-S"]
                client.close()
        assert fleet.alive_count() == 0
        # Drained gracefully: shutdown RPC, not SIGTERM/SIGKILL.
        assert all(s.process.returncode == 0 for s in fleet.shards)

    def test_crash_restart_with_warm_disk_tier(self, tmp_path,
                                               make_planner):
        config = self._config(tmp_path, max_restarts=2)
        fleet = PlanFleet(config).start()
        try:
            from repro.cli import _setup
            _arch, _c, _p, planner = _setup("VLM-S", 4, 0, plan_cache=True,
                                            cache_size=16)
            from repro.cli import _workload
            stream = _workload(_arch, 2, 0).batches(2)
            client = FleetClient(fleet.addresses, "VLM-S", 0, stream,
                                 planner=planner, timeout_s=60.0)
            client.run()
            assert not client.errors

            victim = fleet.shards[0]
            victim.process.send_signal(signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if victim.restarts == 1 and victim.alive:
                    break
                time.sleep(0.2)
            assert victim.restarts == 1 and victim.alive

            # The monitor respawned the process; give the new server a
            # moment to bind its socket before probing.
            deadline = time.monotonic() + 30.0
            jobs = None
            while time.monotonic() < deadline:
                try:
                    probe = PlanServiceClient(victim.address, timeout_s=5.0)
                except OSError:
                    time.sleep(0.2)
                    continue
                try:
                    jobs = probe.ping()["jobs"]
                    break
                except Exception:  # noqa: BLE001 — not up yet
                    time.sleep(0.2)
                finally:
                    probe.close()
            assert jobs == ["VLM-S"]

            # The restarted shard serves its signatures from the shared
            # disk tier: no re-search anywhere in the fleet.
            before = fleet_stats(fleet.addresses)["service"]["searches"]
            client2 = FleetClient(fleet.addresses, "VLM-S", 1, stream,
                                  planner=planner, timeout_s=60.0)
            client2.run()
            assert not client2.errors
            after = fleet_stats(fleet.addresses)
            assert after["service"]["searches"] == before
            assert after["service"]["disk_hits"] >= 1
            client.close()
            client2.close()
        finally:
            fleet.stop(timeout_s=15.0)

    def test_graceful_exit_is_not_restarted(self, tmp_path):
        config = self._config(tmp_path)
        fleet = PlanFleet(config).start()
        try:
            client = PlanServiceClient(fleet.shards[0].address,
                                       timeout_s=10.0)
            client.shutdown()
            client.close()
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if fleet.shards[0].gone:
                    break
                time.sleep(0.2)
            assert fleet.shards[0].gone
            assert fleet.shards[0].restarts == 0
            assert fleet.shards[1].alive
        finally:
            fleet.stop(timeout_s=15.0)
