"""Tests for the analytic FLOPs / bytes / activation accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import flops as F
from repro.models.zoo import DIT_5B, LLAMA3_8B, VIT_5B
from tests.conftest import TINY_DIT, TINY_LM, TINY_VIT


class TestForwardFlops:
    def test_scales_linearly_with_batch(self):
        one = F.layer_forward_flops(TINY_LM, 1, 128)
        four = F.layer_forward_flops(TINY_LM, 4, 128)
        assert four == pytest.approx(4 * one)

    def test_superlinear_in_sequence(self):
        # Attention's quadratic term makes doubling seq more than double.
        short = F.layer_forward_flops(TINY_LM, 1, 1024)
        long = F.layer_forward_flops(TINY_LM, 1, 2048)
        assert long > 2 * short

    def test_gated_mlp_larger_than_plain(self):
        gated = F.layer_forward_flops(TINY_LM, 1, 128)
        plain_spec = TINY_LM.__class__(**{**TINY_LM.__dict__, "gated_mlp": False})
        plain = F.layer_forward_flops(plain_spec, 1, 128)
        assert gated > plain

    def test_cross_attention_adds_work(self):
        with_ctx = F.layer_forward_flops(TINY_DIT, 1, 256, context=128)
        without = F.layer_forward_flops(TINY_DIT, 1, 256, context=1)
        assert with_ctx > without

    def test_module_flops_is_layers_times_layer(self):
        layer = F.layer_forward_flops(TINY_VIT, 2, 196)
        module = F.module_forward_flops(TINY_VIT, 2, 196)
        assert module == pytest.approx(TINY_VIT.num_layers * layer)

    def test_known_magnitude_llama8b(self):
        # ~6 * params FLOPs/token is the standard dense-transformer rule of
        # thumb for fw+2bw; forward alone is ~2 * params (ignoring attn).
        per_token_fw = F.module_forward_flops(LLAMA3_8B, 1, 8192) / 8192
        body_params = LLAMA3_8B.num_layers * LLAMA3_8B.layer_parameters()
        assert per_token_fw == pytest.approx(2 * body_params, rel=0.35)


class TestTensorParallelScaling:
    def test_flops_shard_by_tp(self):
        w1 = F.layer_work(TINY_LM, 2, 512, tp=1)
        w4 = F.layer_work(TINY_LM, 2, 512, tp=4)
        assert w4.flops == pytest.approx(w1.flops / 4)
        assert w4.weight_bytes == pytest.approx(w1.weight_bytes / 4)

    def test_tp1_has_no_comm(self):
        assert F.layer_tp_comm_bytes(TINY_LM, 2, 512, tp=1) == 0.0

    def test_tp_comm_grows_with_group(self):
        c2 = F.layer_tp_comm_bytes(TINY_LM, 1, 512, tp=2)
        c8 = F.layer_tp_comm_bytes(TINY_LM, 1, 512, tp=8)
        assert c8 > c2 > 0

    def test_activation_store_shards(self):
        a1 = F.layer_activation_store(TINY_LM, 1, 512, tp=1)
        a4 = F.layer_activation_store(TINY_LM, 1, 512, tp=4)
        assert a4 == pytest.approx(a1 / 4)

    def test_checkpoint_much_smaller_than_full(self):
        full = F.layer_activation_store(TINY_LM, 1, 512, tp=2)
        ckpt = F.layer_activation_checkpoint_store(TINY_LM, 1, 512, tp=2)
        assert ckpt < full / 10


class TestChunkWork:
    def test_chunk_scales_with_layers(self):
        one = F.chunk_work(TINY_LM, 1, 1, 512)
        three = F.chunk_work(TINY_LM, 3, 1, 512)
        assert three.flops == pytest.approx(3 * one.flops)
        assert three.act_store_bytes == pytest.approx(3 * one.act_store_bytes)

    def test_zero_layers_is_zero_work(self):
        zero = F.chunk_work(TINY_LM, 0, 1, 512)
        assert zero.flops == 0.0
        assert zero.weight_bytes == 0.0

    def test_negative_layers_rejected(self):
        with pytest.raises(ValueError):
            F.chunk_work(TINY_LM, -1, 1, 512)

    def test_layerwork_addition(self):
        a = F.layer_work(TINY_LM, 1, 128)
        b = F.layer_work(TINY_LM, 1, 256)
        c = a + b
        assert c.flops == pytest.approx(a.flops + b.flops)
        assert c.tp_comm_bytes == pytest.approx(a.tp_comm_bytes + b.tp_comm_bytes)


class TestTrainingState:
    def test_default_16_bytes_per_param(self):
        assert F.training_state_bytes(1000) == pytest.approx(16_000)

    def test_zero_optimizer_sharding(self):
        # With 4-way optimizer sharding: 4 + 12/4 = 7 bytes/param.
        assert F.training_state_bytes(1000, dp_shards=4) == pytest.approx(7_000)

    def test_tp_shards_everything(self):
        assert F.training_state_bytes(1000, tp=2) == pytest.approx(8_000)


class TestP2PBytes:
    def test_boundary_bytes(self):
        assert F.boundary_p2p_bytes(TINY_LM, 1, 100) == 100 * 512 * 2


@settings(max_examples=30, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=16),
    seq=st.integers(min_value=16, max_value=4096),
    tp=st.sampled_from([1, 2, 4, 8]),
)
def test_property_all_counts_nonnegative_and_monotone(batch, seq, tp):
    """Work counts are positive and monotone in batch size."""
    w = F.layer_work(TINY_VIT, batch, seq, tp)
    assert w.flops > 0
    assert w.weight_bytes > 0
    assert w.act_store_bytes > 0
    assert w.act_ckpt_bytes > 0
    bigger = F.layer_work(TINY_VIT, batch + 1, seq, tp)
    assert bigger.flops > w.flops
    assert bigger.act_store_bytes > w.act_store_bytes
