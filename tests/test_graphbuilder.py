"""Tests for iteration-graph construction (dependency structure)."""

import pytest

from repro.core.graphbuilder import build_iteration_graph
from repro.core.stages import Direction
from repro.data.batching import GlobalBatch
from repro.data.packing import controlled_vlm_microbatch


class TestGraphStructure:
    def test_uids_topological(self, vlm_graph):
        for stage in vlm_graph.stages:
            assert all(dep < stage.uid for dep in stage.deps)

    def test_every_pair_has_fw_and_bw(self, vlm_graph):
        seen = {}
        for stage in vlm_graph.stages:
            seen.setdefault(stage.pair_id, set()).add(stage.direction)
        for pair_id, directions in seen.items():
            assert directions == {Direction.FORWARD, Direction.BACKWARD}

    def test_pair_rank_matches_stage_rank(self, vlm_graph):
        for stage in vlm_graph.stages:
            assert vlm_graph.pairs[stage.pair_id].rank == stage.rank

    def test_forward_chain_rank_progression(self, vlm_graph):
        """Within one (mb, module, sub), fw stages visit ranks 0..P-1 in
        order within each segment."""
        chains = {}
        for stage in vlm_graph.stages:
            if stage.direction is Direction.FORWARD:
                key = (stage.key.microbatch, stage.key.module, stage.key.sub_index)
                chains.setdefault(key, []).append(stage)
        for chain in chains.values():
            chain.sort(key=lambda s: s.uid)
            expected_ranks = [
                r for _seg in range(len(chain) // vlm_graph.num_ranks)
                for r in range(vlm_graph.num_ranks)
            ]
            assert [s.rank for s in chain] == expected_ranks

    def test_backward_reverses_forward(self, vlm_graph):
        """The first bw stage of a chain runs on the last fw stage's rank."""
        by_chain = {}
        for stage in vlm_graph.stages:
            key = (stage.key.microbatch, stage.key.module, stage.key.sub_index,
                   stage.direction)
            by_chain.setdefault(key, []).append(stage)
        for (mb, module, sub, direction), chain in by_chain.items():
            if direction is not Direction.BACKWARD:
                continue
            chain.sort(key=lambda s: s.uid)
            fw_chain = sorted(
                by_chain[(mb, module, sub, Direction.FORWARD)],
                key=lambda s: s.uid,
            )
            assert chain[0].rank == fw_chain[-1].rank
            assert chain[-1].rank == fw_chain[0].rank

    def test_backbone_waits_for_all_encoder_subs(self, vlm_setup, small_cluster,
                                                 parallel2, cost_model):
        arch, plan, partitioner = vlm_setup
        batch = GlobalBatch([controlled_vlm_microbatch(0, 12)])
        graph = build_iteration_graph(
            arch, plan, batch, small_cluster, parallel2, cost_model,
            partitioner=partitioner,
        )
        lm_fw_first = next(
            s for s in graph.stages
            if s.key.module == "tiny-lm" and s.direction is Direction.FORWARD
        )
        # Its deps must be the final fw stage of every ViT sub-microbatch.
        dep_stages = [graph.stages[d] for d in lm_fw_first.deps]
        assert dep_stages, "backbone must depend on encoder outputs"
        num_subs = len(partitioner.split_microbatch(
            plan, batch.microbatches[0])["tiny-vit"])
        assert len(dep_stages) == num_subs
        for dep in dep_stages:
            assert dep.key.module == "tiny-vit"
            assert dep.rank == graph.num_ranks - 1  # last pipeline rank

    def test_encoder_bw_waits_for_backbone_bw(self, vlm_setup, small_cluster,
                                              parallel2, cost_model):
        arch, plan, partitioner = vlm_setup
        batch = GlobalBatch([controlled_vlm_microbatch(0, 6)])
        graph = build_iteration_graph(
            arch, plan, batch, small_cluster, parallel2, cost_model,
            partitioner=partitioner,
        )
        vit_bw_first = next(
            s for s in graph.stages
            if s.key.module == "tiny-vit" and s.direction is Direction.BACKWARD
        )
        dep_modules = {graph.stages[d].key.module for d in vit_bw_first.deps}
        assert "tiny-lm" in dep_modules

    def test_loss_module_bw_follows_own_fw(self, vlm_graph):
        lm_bw_first = next(
            s for s in vlm_graph.stages
            if s.key.module == "tiny-lm" and s.direction is Direction.BACKWARD
        )
        dep_dirs = {vlm_graph.stages[d].direction for d in lm_bw_first.deps}
        assert dep_dirs == {Direction.FORWARD}

    def test_no_images_no_vit_stages(self, vlm_setup, small_cluster, parallel2,
                                     cost_model):
        arch, plan, partitioner = vlm_setup
        batch = GlobalBatch([controlled_vlm_microbatch(0, 0)])
        graph = build_iteration_graph(
            arch, plan, batch, small_cluster, parallel2, cost_model,
            partitioner=partitioner,
        )
        modules = {s.key.module for s in graph.stages}
        assert modules == {"tiny-lm"}

    def test_static_memory_positive_all_ranks(self, vlm_graph):
        assert all(b > 0 for b in vlm_graph.static_bytes_per_rank)

    def test_model_flops_positive(self, vlm_graph):
        assert vlm_graph.model_flops > 0

    def test_groups_have_total_latency(self, vlm_graph):
        for group in vlm_graph.groups().values():
            assert group.total_ms > 0
            assert group.segment_keys

    def test_t2v_graph_builds(self, t2v_graph):
        modules = {s.key.module for s in t2v_graph.stages}
        assert modules == {"tiny-lm", "tiny-dit"}

    def test_t2v_dit_depends_on_lm(self, t2v_graph):
        dit_fw_first = next(
            s for s in t2v_graph.stages
            if s.key.module == "tiny-dit" and s.direction is Direction.FORWARD
        )
        dep_modules = {t2v_graph.stages[d].key.module for d in dit_fw_first.deps}
        assert dep_modules == {"tiny-lm"}


class TestLatencyAccessors:
    def test_latency_positive(self, vlm_graph):
        for stage in vlm_graph.stages:
            assert vlm_graph.latency_ms(stage) > 0

    def test_bw_slower_than_fw(self, vlm_graph):
        for pair in vlm_graph.pairs:
            assert pair.backward_ms() > pair.forward_ms()

    def test_busy_time_per_rank(self, vlm_graph):
        busy = vlm_graph.total_compute_ms_per_rank()
        assert len(busy) == vlm_graph.num_ranks
        assert all(b > 0 for b in busy)

    def test_reset_strategies(self, vlm_graph):
        vlm_graph.reset_strategies(0)
        assert all(p.selected == 0 for p in vlm_graph.pairs)
