"""End-to-end integration tests: DIP vs baselines, deploy correctness.

These are the repository's "does the whole thing hold together" checks:
the full DIP stack (partition -> graph -> search -> memopt -> simulate ->
compile -> replay) against every baseline on shared workloads.
"""

import pytest

from repro.baselines.megatron import megatron_schedule
from repro.baselines.nnscaler import NnScalerPlan
from repro.baselines.optimus import optimus_schedule
from repro.core.graphbuilder import build_iteration_graph
from repro.core.planner import OnlinePlanner, reference_microbatch
from repro.core.searcher import ScheduleSearcher
from repro.core.partitioner import ModalityPartitioner
from repro.data.workload import (
    DynamicImageBoundsSchedule,
    t2v_workload,
    vlm_workload,
)
from repro.runtime.compiler import compile_schedule
from repro.runtime.engine import execute_plan


def dip_time(arch, batch, cluster, parallel, cost_model, seed=0, budget=25):
    partitioner = ModalityPartitioner(arch, cluster, parallel, cost_model)
    plan = partitioner.plan(reference_microbatch(arch.kind))
    graph = build_iteration_graph(arch, plan, batch, cluster, parallel,
                                  cost_model, partitioner=partitioner)
    searcher = ScheduleSearcher(cluster, parallel, cost_model,
                                budget_evaluations=budget, seed=seed)
    return searcher.search(graph).total_ms


class TestDipBeatsBaselinesVlm:
    @pytest.fixture(autouse=True)
    def _setup(self, tiny_vlm, small_cluster, parallel2, cost_model):
        self.arch = tiny_vlm
        self.cluster = small_cluster
        self.parallel = parallel2
        self.cm = cost_model
        self.batch = vlm_workload(4, seed=11).next_batch()

    def test_dip_beats_megatron(self):
        dip = dip_time(self.arch, self.batch, self.cluster, self.parallel, self.cm)
        megatron = megatron_schedule(self.arch, self.batch, self.cluster,
                                     self.parallel, self.cm).total_ms
        assert dip < megatron

    def test_dip_beats_or_matches_optimus(self):
        dip = dip_time(self.arch, self.batch, self.cluster, self.parallel, self.cm)
        optimus = optimus_schedule(self.arch, self.batch, self.cluster,
                                   self.parallel, self.cm).total_ms
        assert dip <= optimus * 1.05

    def test_dip_beats_or_matches_nnscaler(self):
        dip = dip_time(self.arch, self.batch, self.cluster, self.parallel, self.cm)
        plan = NnScalerPlan(self.arch, self.cluster, self.parallel, self.cm)
        plan.fit(vlm_workload(4, seed=99).next_batch())
        nns = plan.schedule(self.batch).total_ms
        assert dip <= nns * 1.05


class TestDipBeatsBaselinesT2v:
    def test_dip_beats_megatron_t2v(self, tiny_t2v, small_cluster, parallel2,
                                    cost_model):
        batch = t2v_workload(4, seed=21).next_batch()
        dip = dip_time(tiny_t2v, batch, small_cluster, parallel2, cost_model)
        megatron = megatron_schedule(tiny_t2v, batch, small_cluster, parallel2,
                                     cost_model).total_ms
        assert dip < megatron


class TestDynamicAdaptation:
    def test_dip_adapts_across_dynamic_iterations(self, tiny_vlm, small_cluster,
                                                  parallel2, cost_model):
        """Across the Fig. 8b rise-and-fall workload, heavy-image
        iterations must cost more than empty ones, and every schedule
        must be valid."""
        sched = DynamicImageBoundsSchedule(num_microbatches=2, seed=0)
        heavy = sched.batch(4)   # peak of the rise
        light = sched.batch(19)  # end of the fall (no images)
        t_heavy = dip_time(tiny_vlm, heavy, small_cluster, parallel2, cost_model)
        t_light = dip_time(tiny_vlm, light, small_cluster, parallel2, cost_model)
        assert t_heavy > t_light

    def test_gap_to_megatron_widens_with_images(self, tiny_vlm, small_cluster,
                                                parallel2, cost_model):
        """The paper's key claim: DIP's advantage grows under heavy
        multimodal load and shrinks on text-only batches."""
        sched = DynamicImageBoundsSchedule(num_microbatches=2, seed=0)
        heavy, light = sched.batch(4), sched.batch(19)
        ratios = []
        for batch in (heavy, light):
            dip = dip_time(tiny_vlm, batch, small_cluster, parallel2, cost_model)
            meg = megatron_schedule(tiny_vlm, batch, small_cluster, parallel2,
                                    cost_model).total_ms
            ratios.append(meg / dip)
        assert ratios[0] > ratios[1]


class TestDeployment:
    def test_full_pipeline_deploys_and_replays(self, tiny_vlm, small_cluster,
                                               parallel2, cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=8, seed=0)
        planner = OnlinePlanner(tiny_vlm, small_cluster, parallel2, cost_model,
                                searcher=searcher, deploy=True)
        reports = planner.run(vlm_workload(2, seed=0).batches(2),
                              asynchronous=True)
        for report in reports:
            assert report.engine.total_ms == pytest.approx(report.train_ms,
                                                           rel=1e-9)

    def test_baseline_schedules_also_deploy(self, tiny_vlm, small_cluster,
                                            parallel2, cost_model):
        batch = vlm_workload(3, seed=4).next_batch()
        schedule = megatron_schedule(tiny_vlm, batch, small_cluster, parallel2,
                                     cost_model)
        plan = compile_schedule(schedule.graph, schedule.order, small_cluster,
                                parallel2, cost_model)
        engine = execute_plan(plan)
        assert engine.total_ms == pytest.approx(schedule.total_ms, rel=1e-9)
