"""Tests for the dual-queue greedy interleaver (section 5.2)."""

import pytest

from repro.core.interleaver import interleave_stages
from repro.core.schedule import validate_schedule
from repro.core.stages import Direction
from repro.sim.pipeline import simulate_pipeline
from tests.test_pipeline_sim import make_cost, two_rank_graph


class TestBasicInterleaving:
    def test_produces_valid_schedule(self, vlm_graph, small_cluster, parallel2,
                                     cost_model):
        result = interleave_stages(vlm_graph, small_cluster, parallel2, cost_model)
        assert validate_schedule(vlm_graph, result.order) == []

    def test_times_match_simulator(self, vlm_graph, small_cluster, parallel2,
                                   cost_model):
        """The interleaver's internal clock must agree with the
        discrete-event simulator on the same order."""
        result = interleave_stages(vlm_graph, small_cluster, parallel2, cost_model)
        sim = simulate_pipeline(
            vlm_graph, result.order, small_cluster, parallel2, cost_model
        )
        assert sim.total_ms == pytest.approx(result.total_ms)
        for uid in range(len(vlm_graph.stages)):
            assert sim.start_ms[uid] == pytest.approx(result.start_ms[uid])

    def test_t2v_graph_interleaves(self, t2v_graph, small_cluster, parallel2,
                                   cost_model):
        result = interleave_stages(t2v_graph, small_cluster, parallel2, cost_model)
        assert validate_schedule(t2v_graph, result.order) == []
        assert result.total_ms > 0

    def test_simple_chain_timing(self, small_cluster, cost_model):
        from repro.cluster.topology import ParallelConfig

        graph = two_rank_graph(fw=10.0, bw=20.0)
        parallel = ParallelConfig(dp=1, tp=1, pp=2)
        result = interleave_stages(graph, small_cluster, parallel, cost_model)
        assert result.total_ms == pytest.approx(60.0)

    def test_priorities_break_ties(self, vlm_graph, small_cluster, parallel2,
                                   cost_model):
        """Different priority assignments may produce different orders."""
        n = len(vlm_graph.stages)
        base = interleave_stages(
            vlm_graph, small_cluster, parallel2, cost_model,
            priorities=[0] * n,
        )
        flipped = interleave_stages(
            vlm_graph, small_cluster, parallel2, cost_model,
            priorities=[n - s.uid for s in vlm_graph.stages],
        )
        assert validate_schedule(vlm_graph, flipped.order) == []
        # Both are valid; orders need not match.
        assert base.order != flipped.order or base.total_ms == flipped.total_ms


class TestMemoryDiscipline:
    def test_memory_cap_respected_when_feasible(self, vlm_graph, small_cluster,
                                                parallel2, cost_model):
        from repro.core.memopt import generate_candidates

        generate_candidates(vlm_graph)
        vlm_graph.select_most_memory_efficient()
        result = interleave_stages(vlm_graph, small_cluster, parallel2, cost_model)
        sim = simulate_pipeline(
            vlm_graph, result.order, small_cluster, parallel2, cost_model
        )
        assert not result.memory_forced
        assert sim.memory_exceeded == []

    def test_tight_memory_forces_1f1b_like_behavior(self, small_cluster,
                                                    cost_model):
        """With a cap that fits only one in-flight pair, forwards and
        backwards must alternate rather than run all forwards first."""
        from repro.cluster.topology import ParallelConfig
        from repro.core.stages import (
            IterationGraph,
            SegmentKey,
            StagePair,
            StageTask,
        )

        pairs = []
        stages = []
        # Four independent single-rank pairs, each with act=100.
        for i in range(4):
            pairs.append(StagePair(i, i, "m", 0, 0, rank=0, num_layers=1,
                                   cost=make_cost(act=100.0)))
            stages.append(StageTask(len(stages),
                                    SegmentKey(i, "m", 0, 0, Direction.FORWARD),
                                    0, i, ()))
        for i in range(4):
            stages.append(StageTask(len(stages),
                                    SegmentKey(i, "m", 0, 0, Direction.BACKWARD),
                                    0, i, (i,)))
        graph = IterationGraph(1, stages, pairs, [0.0], memory_limit_bytes=150.0)
        parallel = ParallelConfig(dp=1, tp=1, pp=1)
        result = interleave_stages(graph, small_cluster, parallel, cost_model)
        assert not result.memory_forced
        sim = simulate_pipeline(graph, result.order, small_cluster, parallel,
                                cost_model)
        assert sim.memory_exceeded == []
        # Forwards cannot all precede backwards under the cap.
        order = result.order[0]
        first_bw = next(i for i, uid in enumerate(order)
                        if not graph.stages[uid].is_forward)
        assert first_bw < 4

    def test_infeasible_memory_forces_progress(self, small_cluster, cost_model):
        """A cap below a single pair cannot be honoured; the interleaver
        must still terminate and flag the violation."""
        from repro.cluster.topology import ParallelConfig

        graph = two_rank_graph(act=500.0, limit=100.0)
        parallel = ParallelConfig(dp=1, tp=1, pp=2)
        result = interleave_stages(graph, small_cluster, parallel, cost_model)
        assert result.memory_forced
        assert validate_schedule(graph, result.order) == []


class TestOneFOneBPattern:
    def test_uniform_graph_alternates(self, small_cluster, cost_model):
        """On a uniform single-rank workload with deps satisfied, the
        scheduler emulates 1F1B once both queues are hot."""
        from repro.cluster.topology import ParallelConfig
        from repro.core.stages import (
            IterationGraph,
            SegmentKey,
            StagePair,
            StageTask,
        )

        pairs, stages = [], []
        n = 6
        for i in range(n):
            pairs.append(StagePair(i, i, "m", 0, 0, rank=0, num_layers=1,
                                   cost=make_cost(fw=10, bw=10, act=10.0)))
            stages.append(StageTask(len(stages),
                                    SegmentKey(i, "m", 0, 0, Direction.FORWARD),
                                    0, i, ()))
        for i in range(n):
            stages.append(StageTask(len(stages),
                                    SegmentKey(i, "m", 0, 0, Direction.BACKWARD),
                                    0, i, (i,)))
        graph = IterationGraph(1, stages, pairs, [0.0], 1e12)
        parallel = ParallelConfig(dp=1, tp=1, pp=1)
        result = interleave_stages(graph, small_cluster, parallel, cost_model)
        kinds = ["F" if graph.stages[u].is_forward else "B"
                 for u in result.order[0]]
        # After the first forward, F and B alternate (1F1B).
        body = "".join(kinds[1:-1])
        assert "FF" not in body or "BB" not in body
