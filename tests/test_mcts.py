"""Tests for MCTS / DFS / random segment reordering (section 5.1)."""

import pytest

from repro.core.mcts import (
    dfs_reorder,
    mcts_reorder,
    natural_ordering,
    random_reorder,
)
from repro.core.stages import Direction, GroupKey


def make_groups(n):
    return [GroupKey(i, "m", Direction.FORWARD) for i in range(n)]


def position_evaluator(target):
    """Iteration time = sum of position mismatches against a hidden
    target permutation; 0 when the ordering equals the target."""
    index = {g: i for i, g in enumerate(target)}

    def evaluate(ordering):
        return float(sum(abs(i - index[g]) for i, g in enumerate(ordering)))

    return evaluate


class TestMcts:
    def test_finds_exact_target_small(self):
        groups = make_groups(4)
        target = list(reversed(groups))
        result = mcts_reorder(groups, position_evaluator(target),
                              budget_evaluations=400, seed=1)
        assert result.best_ms == 0.0
        assert result.ordering == target

    def test_improves_over_first_sample(self):
        groups = make_groups(8)
        target = list(reversed(groups))
        result = mcts_reorder(groups, position_evaluator(target),
                              budget_evaluations=150, seed=0)
        first_score = result.trace[0][2]
        assert result.best_ms <= first_score

    def test_budget_respected(self):
        groups = make_groups(6)
        result = mcts_reorder(groups, position_evaluator(groups),
                              budget_evaluations=37, seed=0)
        assert result.evaluations <= 37 + 4  # workers may finish a rollout

    def test_trace_monotone_decreasing(self):
        groups = make_groups(8)
        result = mcts_reorder(groups, position_evaluator(list(reversed(groups))),
                              budget_evaluations=120, seed=2)
        scores = [t[2] for t in result.trace]
        assert scores == sorted(scores, reverse=True)

    def test_invert_maximises(self):
        groups = make_groups(5)
        target = list(reversed(groups))
        evaluator = position_evaluator(target)
        worst = mcts_reorder(groups, evaluator, budget_evaluations=300,
                             seed=0, invert=True)
        best = mcts_reorder(groups, evaluator, budget_evaluations=300, seed=0)
        assert worst.best_ms > best.best_ms

    def test_parallel_workers_agree_on_interface(self):
        groups = make_groups(6)
        result = mcts_reorder(groups, position_evaluator(groups),
                              budget_evaluations=60, seed=0, num_workers=4)
        assert result.evaluations >= 60  # all workers contribute
        assert len(result.ordering) == 6

    def test_empty_groups_rejected(self):
        with pytest.raises(ValueError):
            mcts_reorder([], lambda o: 0.0, budget_evaluations=5)

    def test_priorities_descending_from_position(self):
        groups = make_groups(3)
        result = mcts_reorder(groups, position_evaluator(groups),
                              budget_evaluations=30, seed=0)
        prios = result.priorities()
        ordered = sorted(prios.items(), key=lambda kv: -kv[1])
        assert [g for g, _ in ordered] == result.ordering


class TestBaselineSearches:
    def test_random_runs_and_tracks_best(self):
        groups = make_groups(6)
        result = random_reorder(groups, position_evaluator(list(reversed(groups))),
                                budget_evaluations=50, seed=3)
        assert result.evaluations == 50
        assert result.best_ms >= 0

    def test_dfs_exhausts_small_space(self):
        groups = make_groups(3)
        result = dfs_reorder(groups, position_evaluator(list(reversed(groups))),
                             budget_evaluations=6, seed=0)
        assert result.evaluations == 6  # 3! permutations
        assert result.best_ms == 0.0

    def test_dfs_gets_stuck_in_first_subtree(self):
        """DFS explores lexicographically: with a tight budget it cannot
        reach targets whose first element differs - MCTS can."""
        groups = make_groups(7)
        target = list(reversed(groups))
        evaluator = position_evaluator(target)
        budget = 100
        dfs = dfs_reorder(groups, evaluator, budget_evaluations=budget, seed=0)
        mcts = mcts_reorder(groups, evaluator, budget_evaluations=budget, seed=0)
        assert mcts.best_ms <= dfs.best_ms

    def test_natural_ordering_stable(self):
        groups = [
            GroupKey(1, "b", Direction.BACKWARD),
            GroupKey(0, "a", Direction.FORWARD),
            GroupKey(0, "a", Direction.BACKWARD),
            GroupKey(1, "b", Direction.FORWARD),
        ]
        ordered = natural_ordering(groups)
        assert ordered[0] == GroupKey(0, "a", Direction.FORWARD)
        assert ordered[1] == GroupKey(0, "a", Direction.BACKWARD)
        assert ordered[2] == GroupKey(1, "b", Direction.FORWARD)
