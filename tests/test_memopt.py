"""Tests for per-layer memory optimization (section 5.3)."""

import pytest

from repro.core.interleaver import interleave_stages
from repro.core.memopt import (
    DEFAULT_NUM_CANDIDATES,
    generate_candidates,
    optimize_memory,
)
from repro.sim.pipeline import simulate_pipeline


class TestCandidateGeneration:
    def test_candidates_populated(self, vlm_graph):
        generate_candidates(vlm_graph)
        for pair in vlm_graph.pairs:
            assert 2 <= len(pair.candidates) <= DEFAULT_NUM_CANDIDATES

    def test_fastest_first_leanest_present(self, vlm_graph):
        generate_candidates(vlm_graph)
        for pair in vlm_graph.pairs:
            extras = [c.total_extra_ms for c in pair.candidates]
            residents = [c.resident_bytes for c in pair.candidates]
            # Fastest candidate: zero extra latency, full residency.
            assert min(extras) == 0.0
            assert pair.candidates[0].resident_bytes == max(residents)

    def test_pareto_frontier(self, vlm_graph):
        generate_candidates(vlm_graph)
        for pair in vlm_graph.pairs:
            cands = pair.candidates
            for a in cands:
                dominated = any(
                    b.resident_bytes < a.resident_bytes
                    and b.total_extra_ms < a.total_extra_ms
                    for b in cands
                )
                assert not dominated

    def test_most_memory_efficient_selection(self, vlm_graph):
        generate_candidates(vlm_graph)
        vlm_graph.select_most_memory_efficient()
        for pair in vlm_graph.pairs:
            chosen = pair.strategy.resident_bytes
            assert chosen == min(c.resident_bytes for c in pair.candidates)

    def test_candidates_shared_across_identical_pairs(self, vlm_graph):
        generate_candidates(vlm_graph)
        by_cost = {}
        for pair in vlm_graph.pairs:
            key = (id(pair.cost), pair.num_layers)
            if key in by_cost:
                assert [c.label for c in pair.candidates] == by_cost[key]
            else:
                by_cost[key] = [c.label for c in pair.candidates]


class TestOptimizeMemory:
    def _prepared(self, graph, cluster, parallel, cost_model):
        generate_candidates(graph)
        graph.select_most_memory_efficient()
        inter = interleave_stages(graph, cluster, parallel, cost_model)
        return inter

    def test_reduces_extra_latency(self, vlm_graph, small_cluster, parallel2,
                                   cost_model):
        inter = self._prepared(vlm_graph, small_cluster, parallel2, cost_model)
        report = optimize_memory(vlm_graph, inter.start_ms, inter.end_ms)
        assert report.extra_ms_after <= report.extra_ms_before

    def test_final_schedule_fits_memory(self, vlm_graph, small_cluster,
                                        parallel2, cost_model):
        inter = self._prepared(vlm_graph, small_cluster, parallel2, cost_model)
        optimize_memory(vlm_graph, inter.start_ms, inter.end_ms)
        sim = simulate_pipeline(vlm_graph, inter.order, small_cluster,
                                parallel2, cost_model)
        assert sim.memory_exceeded == []

    def test_final_faster_than_memory_efficient_baseline(
        self, vlm_graph, small_cluster, parallel2, cost_model
    ):
        inter = self._prepared(vlm_graph, small_cluster, parallel2, cost_model)
        before = simulate_pipeline(vlm_graph, inter.order, small_cluster,
                                   parallel2, cost_model).total_ms
        optimize_memory(vlm_graph, inter.start_ms, inter.end_ms)
        after = simulate_pipeline(vlm_graph, inter.order, small_cluster,
                                  parallel2, cost_model).total_ms
        assert after <= before + 1e-9

    def test_greedy_vs_exact(self, vlm_graph, small_cluster, parallel2,
                             cost_model):
        inter = self._prepared(vlm_graph, small_cluster, parallel2, cost_model)
        greedy = optimize_memory(vlm_graph, inter.start_ms, inter.end_ms,
                                 exact=False)
        # Re-prepare and run exact.
        vlm_graph.select_most_memory_efficient()
        exact = optimize_memory(vlm_graph, inter.start_ms, inter.end_ms,
                                exact=True)
        assert exact.extra_ms_after <= greedy.extra_ms_after + 1e-6

    def test_t2v_graph(self, t2v_graph, small_cluster, parallel2, cost_model):
        inter = self._prepared(t2v_graph, small_cluster, parallel2, cost_model)
        report = optimize_memory(t2v_graph, inter.start_ms, inter.end_ms)
        sim = simulate_pipeline(t2v_graph, inter.order, small_cluster,
                                parallel2, cost_model)
        assert sim.memory_exceeded == []
        assert report.improvement_ms >= 0


class TestCandidateMemoization:
    def test_repeat_call_is_a_noop(self, vlm_graph):
        """The per-graph guard: a second generate_candidates on the same
        graph object keeps the candidate lists (only selections reset)."""
        generate_candidates(vlm_graph)
        first = [pair.candidates for pair in vlm_graph.pairs]
        vlm_graph.pairs[0].selected = 2
        generate_candidates(vlm_graph)
        second = [pair.candidates for pair in vlm_graph.pairs]
        assert all(a is b for a, b in zip(first, second))
        assert vlm_graph.pairs[0].selected == 0  # selections still reset

    def test_cross_graph_memo_reuses_solved_sets(self, vlm_setup,
                                                 small_cluster, parallel2,
                                                 cost_model):
        """Signature-identical graphs (e.g. cache replays) share the
        memoised candidate objects instead of re-solving the MCKP."""
        from repro.core.graphbuilder import build_iteration_graph
        from repro.core.memopt import candidate_memo_size, clear_candidate_memo
        from repro.data.workload import vlm_workload

        arch, plan, partitioner = vlm_setup
        batch = vlm_workload(2, seed=1).next_batch()

        def build():
            return build_iteration_graph(
                arch, plan, batch, small_cluster, parallel2, cost_model,
                partitioner=partitioner,
            )

        clear_candidate_memo()
        g1, g2 = build(), build()
        generate_candidates(g1)
        solved = candidate_memo_size()
        assert solved > 0
        generate_candidates(g2)
        assert candidate_memo_size() == solved  # nothing new solved
        for p1, p2 in zip(g1.pairs, g2.pairs):
            assert p1.candidates[0] is p2.candidates[0]  # shared frozen objects
            assert p1.candidates is not p2.candidates  # but private lists

    def test_uniform_policy_invalidates_graph_guard(self, vlm_graph):
        from repro.core.memopt import apply_uniform_memory_policy

        generate_candidates(vlm_graph)
        assert len(vlm_graph.pairs[0].candidates) > 1
        apply_uniform_memory_policy(vlm_graph)
        assert len(vlm_graph.pairs[0].candidates) == 1
        generate_candidates(vlm_graph)  # must regenerate, not skip
        assert len(vlm_graph.pairs[0].candidates) > 1
