"""Tests for per-layer memory optimization (section 5.3)."""

import pytest

from repro.core.interleaver import interleave_stages
from repro.core.memopt import (
    DEFAULT_NUM_CANDIDATES,
    generate_candidates,
    optimize_memory,
)
from repro.sim.pipeline import simulate_pipeline


class TestCandidateGeneration:
    def test_candidates_populated(self, vlm_graph):
        generate_candidates(vlm_graph)
        for pair in vlm_graph.pairs:
            assert 2 <= len(pair.candidates) <= DEFAULT_NUM_CANDIDATES

    def test_fastest_first_leanest_present(self, vlm_graph):
        generate_candidates(vlm_graph)
        for pair in vlm_graph.pairs:
            extras = [c.total_extra_ms for c in pair.candidates]
            residents = [c.resident_bytes for c in pair.candidates]
            # Fastest candidate: zero extra latency, full residency.
            assert min(extras) == 0.0
            assert pair.candidates[0].resident_bytes == max(residents)

    def test_pareto_frontier(self, vlm_graph):
        generate_candidates(vlm_graph)
        for pair in vlm_graph.pairs:
            cands = pair.candidates
            for a in cands:
                dominated = any(
                    b.resident_bytes < a.resident_bytes
                    and b.total_extra_ms < a.total_extra_ms
                    for b in cands
                )
                assert not dominated

    def test_most_memory_efficient_selection(self, vlm_graph):
        generate_candidates(vlm_graph)
        vlm_graph.select_most_memory_efficient()
        for pair in vlm_graph.pairs:
            chosen = pair.strategy.resident_bytes
            assert chosen == min(c.resident_bytes for c in pair.candidates)

    def test_candidates_shared_across_identical_pairs(self, vlm_graph):
        generate_candidates(vlm_graph)
        by_cost = {}
        for pair in vlm_graph.pairs:
            key = (id(pair.cost), pair.num_layers)
            if key in by_cost:
                assert [c.label for c in pair.candidates] == by_cost[key]
            else:
                by_cost[key] = [c.label for c in pair.candidates]


class TestOptimizeMemory:
    def _prepared(self, graph, cluster, parallel, cost_model):
        generate_candidates(graph)
        graph.select_most_memory_efficient()
        inter = interleave_stages(graph, cluster, parallel, cost_model)
        return inter

    def test_reduces_extra_latency(self, vlm_graph, small_cluster, parallel2,
                                   cost_model):
        inter = self._prepared(vlm_graph, small_cluster, parallel2, cost_model)
        report = optimize_memory(vlm_graph, inter.start_ms, inter.end_ms)
        assert report.extra_ms_after <= report.extra_ms_before

    def test_final_schedule_fits_memory(self, vlm_graph, small_cluster,
                                        parallel2, cost_model):
        inter = self._prepared(vlm_graph, small_cluster, parallel2, cost_model)
        optimize_memory(vlm_graph, inter.start_ms, inter.end_ms)
        sim = simulate_pipeline(vlm_graph, inter.order, small_cluster,
                                parallel2, cost_model)
        assert sim.memory_exceeded == []

    def test_final_faster_than_memory_efficient_baseline(
        self, vlm_graph, small_cluster, parallel2, cost_model
    ):
        inter = self._prepared(vlm_graph, small_cluster, parallel2, cost_model)
        before = simulate_pipeline(vlm_graph, inter.order, small_cluster,
                                   parallel2, cost_model).total_ms
        optimize_memory(vlm_graph, inter.start_ms, inter.end_ms)
        after = simulate_pipeline(vlm_graph, inter.order, small_cluster,
                                  parallel2, cost_model).total_ms
        assert after <= before + 1e-9

    def test_greedy_vs_exact(self, vlm_graph, small_cluster, parallel2,
                             cost_model):
        inter = self._prepared(vlm_graph, small_cluster, parallel2, cost_model)
        greedy = optimize_memory(vlm_graph, inter.start_ms, inter.end_ms,
                                 exact=False)
        # Re-prepare and run exact.
        vlm_graph.select_most_memory_efficient()
        exact = optimize_memory(vlm_graph, inter.start_ms, inter.end_ms,
                                exact=True)
        assert exact.extra_ms_after <= greedy.extra_ms_after + 1e-6

    def test_t2v_graph(self, t2v_graph, small_cluster, parallel2, cost_model):
        inter = self._prepared(t2v_graph, small_cluster, parallel2, cost_model)
        report = optimize_memory(t2v_graph, inter.start_ms, inter.end_ms)
        sim = simulate_pipeline(t2v_graph, inter.order, small_cluster,
                                parallel2, cost_model)
        assert sim.memory_exceeded == []
        assert report.improvement_ms >= 0
