"""Tests for module specs, the model zoo and LMM composition."""

import pytest

from repro.models.config import Modality, ModalityModuleSpec, ModuleRole
from repro.models.lmm import (
    architecture_summary,
    build_combination,
    build_t2v,
    build_unimodal,
    build_vlm,
)
from repro.models.zoo import (
    COMBINATIONS,
    DIT_5B,
    GPT_175B,
    LLAMA3_8B,
    MODEL_ZOO,
    QWEN2_32B,
    QWEN2_72B,
    VIT_5B,
    VIT_22B,
    combination_by_name,
    module_by_name,
)


class TestModalityModuleSpec:
    def test_head_dim(self):
        assert LLAMA3_8B.head_dim == 128

    def test_gqa_kv_channels(self):
        # Llama3 8B: 8 KV groups of 128 channels.
        assert LLAMA3_8B.kv_channels == 1024

    def test_full_attention_kv_channels(self):
        assert VIT_5B.kv_channels == VIT_5B.hidden_size

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError, match="divisible"):
            ModalityModuleSpec(
                "bad", ModuleRole.BACKBONE, Modality.TEXT,
                num_layers=2, hidden_size=100, ffn_hidden_size=400,
                num_attention_heads=3, num_query_groups=3,
            )

    def test_rejects_indivisible_groups(self):
        with pytest.raises(ValueError, match="divisible"):
            ModalityModuleSpec(
                "bad", ModuleRole.BACKBONE, Modality.TEXT,
                num_layers=2, hidden_size=96, ffn_hidden_size=400,
                num_attention_heads=8, num_query_groups=3,
            )

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError, match="num_layers"):
            ModalityModuleSpec(
                "bad", ModuleRole.BACKBONE, Modality.TEXT,
                num_layers=0, hidden_size=96, ffn_hidden_size=400,
                num_attention_heads=8, num_query_groups=8,
            )


class TestZooParameterCounts:
    """Zoo modules must land near their nominal parameter counts."""

    @pytest.mark.parametrize(
        "name,nominal_b",
        [
            ("vit-5b", 5.0),
            ("vit-22b", 22.0),
            ("llama3-8b", 8.0),
            ("qwen2-32b", 32.0),
            ("qwen2-72b", 72.0),
            ("dit-5b", 5.0),
            ("dit-30b", 30.0),
            ("gpt-175b", 175.0),
            ("lm-7b", 7.0),
            ("vit-2b", 2.0),
            ("lm-5b", 5.0),
        ],
    )
    def test_nominal_size(self, name, nominal_b):
        spec = module_by_name(name)
        assert spec.parameters_billion() == pytest.approx(nominal_b, rel=0.18)

    def test_unknown_module(self):
        with pytest.raises(KeyError, match="unknown module"):
            module_by_name("nonexistent")

    def test_table2_shapes(self):
        # Spot-check Table 2 rows.
        assert VIT_5B.num_layers == 63 and VIT_5B.hidden_size == 1792
        assert VIT_22B.num_layers == 48 and VIT_22B.ffn_hidden_size == 24576
        assert QWEN2_72B.num_layers == 80 and QWEN2_72B.num_attention_heads == 64
        assert DIT_5B.cross_attention and DIT_5B.modality is Modality.VIDEO


class TestCombinations:
    def test_table3_gpu_counts(self):
        assert combination_by_name("VLM-S").num_gpus == 16
        assert combination_by_name("VLM-M").num_gpus == 32
        assert combination_by_name("VLM-L").num_gpus == 64
        assert combination_by_name("T2V-S").num_gpus == 16
        assert combination_by_name("T2V-L").num_gpus == 64

    def test_table6_gpu_counts(self):
        assert combination_by_name("VLM-XL-8k").num_gpus == 8192
        assert combination_by_name("VLM-XL-16k").num_gpus == 16384
        assert combination_by_name("T2V-XL-3k").num_gpus == 3072
        assert combination_by_name("T2V-XL-6k").num_gpus == 6144

    @pytest.mark.parametrize("name,total_b", [
        ("VLM-S", 12.3), ("VLM-M", 37.0), ("VLM-L", 94.4),
        ("T2V-S", 13.0), ("T2V-L", 61.8),
    ])
    def test_combination_totals(self, name, total_b):
        arch = build_combination(combination_by_name(name))
        assert arch.parameters_billion() == pytest.approx(total_b, rel=0.05)

    def test_all_combinations_buildable(self):
        for name in COMBINATIONS:
            arch = build_combination(combination_by_name(name))
            assert arch.num_levels == 2


class TestLMMArchitecture:
    def test_vlm_dataflow(self):
        arch = build_vlm(VIT_5B, LLAMA3_8B)
        assert arch.kind == "vlm"
        assert arch.loss_module.name == "llama3-8b"
        assert [b.name for b in arch.upstream_of("llama3-8b")] == ["vit-5b"]
        assert arch.upstream_of("vit-5b") == []
        assert [b.name for b in arch.downstream_of("vit-5b")] == ["llama3-8b"]

    def test_t2v_roles(self):
        arch = build_t2v(QWEN2_32B, DIT_5B)
        # In a T2V model, the LLM serves as the conditioning encoder.
        assert arch.binding("qwen2-32b").role is ModuleRole.ENCODER
        assert arch.loss_module.name == "dit-5b"

    def test_unimodal(self):
        arch = build_unimodal(LLAMA3_8B)
        assert arch.num_levels == 1
        assert arch.loss_module.name == "llama3-8b"

    def test_binding_lookup_error(self):
        arch = build_vlm(VIT_5B, LLAMA3_8B)
        with pytest.raises(KeyError):
            arch.binding("missing")

    def test_levels_grouping(self):
        arch = build_vlm(VIT_5B, LLAMA3_8B)
        levels = arch.levels()
        assert len(levels) == 2
        assert levels[0][0].name == "vit-5b"
        assert levels[1][0].name == "llama3-8b"

    def test_summary_includes_total(self):
        arch = build_vlm(VIT_5B, LLAMA3_8B)
        summary = architecture_summary(arch)
        assert summary["total"] == pytest.approx(
            summary["vit-5b"] + summary["llama3-8b"]
        )

    def test_gpt175b_is_gpt3_shaped(self):
        assert GPT_175B.num_layers == 96
        assert GPT_175B.hidden_size == 12288
        assert not GPT_175B.gated_mlp
