"""Tests for the monolithic exact schedulers (Fig. 12 baselines).

The exhaustive branch-and-bound doubles as the *optimal oracle* used to
check how close DIP's greedy + MCTS search gets on tiny instances.
"""

import pytest

from repro.cluster.topology import ParallelConfig
from repro.core.graphbuilder import build_iteration_graph
from repro.core.interleaver import interleave_stages
from repro.core.schedule import validate_schedule
from repro.data.batching import GlobalBatch
from repro.data.packing import controlled_vlm_microbatch
from repro.solver.monolithic import (
    exhaustive_optimal_schedule,
    milp_optimal_schedule,
)
from repro.sim.pipeline import simulate_pipeline
from tests.test_pipeline_sim import two_rank_graph


@pytest.fixture
def tiny_graph(vlm_setup, small_cluster, parallel2, cost_model):
    arch, plan, partitioner = vlm_setup
    batch = GlobalBatch([controlled_vlm_microbatch(0, 2)])
    return build_iteration_graph(
        arch, plan, batch, small_cluster, parallel2, cost_model,
        partitioner=partitioner,
    )


class TestExhaustive:
    def test_finds_known_optimum(self, small_cluster, parallel2, cost_model):
        graph = two_rank_graph(fw=10.0, bw=20.0)
        result = exhaustive_optimal_schedule(graph, small_cluster, parallel2,
                                             cost_model)
        assert not result.timed_out
        assert result.total_ms == pytest.approx(60.0)  # only one real option

    def test_optimal_no_worse_than_greedy(self, tiny_graph, small_cluster,
                                          parallel2, cost_model):
        greedy = interleave_stages(tiny_graph, small_cluster, parallel2,
                                   cost_model)
        exact = exhaustive_optimal_schedule(tiny_graph, small_cluster,
                                            parallel2, cost_model,
                                            time_limit_s=20.0)
        if not exact.timed_out:
            assert exact.total_ms <= greedy.total_ms + 1e-6

    def test_order_is_valid_schedule(self, tiny_graph, small_cluster,
                                     parallel2, cost_model):
        exact = exhaustive_optimal_schedule(tiny_graph, small_cluster,
                                            parallel2, cost_model,
                                            time_limit_s=20.0)
        assert exact.order is not None
        assert validate_schedule(tiny_graph, exact.order) == []
        sim = simulate_pipeline(tiny_graph, exact.order, small_cluster,
                                parallel2, cost_model)
        assert sim.total_ms == pytest.approx(exact.total_ms)

    def test_time_limit_enforced(self, vlm_setup, small_cluster, parallel2,
                                 cost_model):
        arch, plan, partitioner = vlm_setup
        batch = GlobalBatch([controlled_vlm_microbatch(i, 40)
                             for i in range(4)])
        graph = build_iteration_graph(
            arch, plan, batch, small_cluster, parallel2, cost_model,
            partitioner=partitioner,
        )
        result = exhaustive_optimal_schedule(graph, small_cluster,
                                             parallel2, cost_model,
                                             time_limit_s=0.05)
        assert result.timed_out  # the full graph is far too big

    def test_node_limit_enforced(self, tiny_graph, small_cluster, parallel2,
                                 cost_model):
        result = exhaustive_optimal_schedule(tiny_graph, small_cluster,
                                             parallel2, cost_model,
                                             node_limit=50)
        assert result.timed_out or result.nodes <= 51


class TestMilp:
    def test_agrees_with_exhaustive_on_tiny(self, small_cluster, parallel2,
                                            cost_model):
        graph = two_rank_graph(fw=10.0, bw=20.0)
        exact = exhaustive_optimal_schedule(graph, small_cluster, parallel2,
                                            cost_model)
        milp = milp_optimal_schedule(graph, small_cluster, parallel2,
                                     cost_model, time_limit_s=20.0)
        assert milp.total_ms == pytest.approx(exact.total_ms, rel=1e-4)

    def test_order_valid(self, small_cluster, parallel2, cost_model):
        graph = two_rank_graph()
        milp = milp_optimal_schedule(graph, small_cluster, parallel2,
                                     cost_model, time_limit_s=20.0)
        assert milp.order is not None
        assert validate_schedule(graph, milp.order) == []
