"""The fleet telemetry plane (src/repro/obs/).

* **Registry** — labelled counters/gauges/histograms, strict label
  validation, idempotent bridging (``set_value`` / ``set_from_values``),
  label-wise snapshot merging with per-shard extra labels.
* **Exposition** — Prometheus text rendering round-trips through the
  parser; malformed lines fail with line numbers; tier-split series sum
  correctly.
* **Tracing** — client and shard spans share one wall-clock timeline;
  the merged Chrome trace validates and carries cross-process flow
  arrows per trace id.
* **Stats merge edge cases** — empty windows, single-shard identity,
  overflow-free summation across many snapshots.
* **End to end** — one traced request through a 2-shard fleet produces
  a merged timeline (client submit + shard queue/lookup/search spans
  under one trace id) and metrics that agree with the stats RPC.
"""

import os
import time
import warnings

import pytest

from repro.core.plancache import PlanCache
from repro.core.planner import OnlinePlanner
from repro.core.searcher import ScheduleSearcher
from repro.data.batching import GlobalBatch
from repro.data.packing import controlled_vlm_microbatch
from repro.fleet import FleetClient, FleetFailoverWarning
from repro.obs import (
    MetricsRegistry,
    RequestTracer,
    histogram_quantile,
    merge_obs_chrome,
    merge_snapshots,
    new_trace_id,
    parse_exposition,
    render_exposition,
    sample_value,
)
from repro.obs.registry import MetricError
from repro.obs.scrape import (
    check_scrape,
    merged_snapshot,
    render_report,
    scrape_fleet,
)
from repro.obs.tracing import spans_for_trace
from repro.service import PlanService, PlanServiceClient, PlanServiceServer
from repro.service.stats import ServiceStats
from repro.trace.export import validate_chrome_trace


def controlled_batch(image_counts, start_index=0):
    return GlobalBatch([
        controlled_vlm_microbatch(index=start_index + i, num_images=count)
        for i, count in enumerate(image_counts)
    ])


@pytest.fixture
def make_planner(tiny_vlm, small_cluster, parallel2, cost_model):
    def factory(budget=8, disk_tier=None, cache_size=32):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=budget, seed=0)
        cache = (PlanCache(capacity=cache_size, disk_tier=disk_tier)
                 if disk_tier is not None else None)
        return OnlinePlanner(tiny_vlm, small_cluster, parallel2, cost_model,
                             searcher=searcher, plan_cache=cache)
    return factory


@pytest.fixture
def traced_fleet(tmp_path, make_planner):
    """In-process UDS shards with a RequestTracer attached to each
    service; yields ``start(n)`` returning (addresses, shard tracers)."""
    started = []

    def start(n=2, disk_tier=None):
        addresses, tracers = [], []
        for i in range(n):
            service = PlanService(num_workers=2, plan_cache=PlanCache(
                capacity=32, disk_tier=disk_tier))
            service.register_job("vlm", planner=make_planner())
            # Distinct fake pids: every shard lives in this test process,
            # but the merger keys process rows on (role, pid).
            tracer = RequestTracer(role="shard", pid=1000 + i)
            service.tracer = tracer
            server = PlanServiceServer(
                service, uds=str(tmp_path / f"shard-{i}.sock"),
                result_timeout_s=60.0, shard_index=i, restarts=0,
            )
            started.append((service, server))
            addresses.append(server.address)
            tracers.append(tracer)
        return addresses, tracers

    yield start
    for service, server in started:
        server.close(timeout=10.0)
        service.close()


# -- metrics registry --------------------------------------------------------


class TestRegistry:
    def test_counter_labels_and_sum(self):
        reg = MetricsRegistry()
        hits = reg.counter("hits_total", "hits", labels=("tier",))
        hits.inc(tier="memory")
        hits.inc(2, tier="disk")
        assert hits.value(tier="memory") == 1
        assert hits.value(tier="disk") == 2
        assert sample_value(reg.snapshot(), "hits_total") == 3

    def test_counter_rejects_negative_and_bad_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", labels=("tier",))
        with pytest.raises(MetricError):
            c.inc(-1, tier="memory")
        with pytest.raises(MetricError):
            c.inc()  # missing label
        with pytest.raises(MetricError):
            c.inc(tier="memory", extra="nope")

    def test_set_value_is_idempotent_bridging(self):
        # Bridging absolute values twice (two scrapes) must not
        # double-count — the whole point of set_value over inc.
        reg = MetricsRegistry()
        c = reg.counter("bridged_total")
        for _ in range(3):
            c.set_value(41)
        assert c.value() == 41

    def test_type_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricError):
            reg.gauge("x")

    def test_gauge_agg_hint_in_snapshot(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(3)
        reg.gauge("peak", agg="max").set(7)
        snap = {m["name"]: m for m in reg.snapshot()["metrics"]}
        assert snap["depth"]["agg"] == "sum"
        assert snap["peak"]["agg"] == "max"

    def test_histogram_counts_and_quantile(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        (metric,) = reg.snapshot()["metrics"]
        (series,) = metric["series"]
        assert series["counts"] == [1, 2, 1, 0]
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(6.05)
        assert histogram_quantile(metric, 0.5) == 1.0
        assert histogram_quantile(metric, 0.99) == 10.0

    def test_histogram_set_from_values_rebuilds(self):
        reg = MetricsRegistry()
        h = reg.histogram("w", buckets=(1.0,), labels=("stage",))
        h.set_from_values([0.5, 2.0], stage="queue")
        h.set_from_values([0.5, 2.0], stage="queue")  # idempotent
        (metric,) = reg.snapshot()["metrics"]
        (series,) = metric["series"]
        assert series["counts"] == [1, 1]
        assert series["count"] == 2

    def test_merge_snapshots_with_shard_labels(self):
        snaps = []
        for hits in (3, 4):
            reg = MetricsRegistry()
            reg.counter("hits_total", labels=("tier",)).inc(
                hits, tier="memory")
            reg.gauge("peak", agg="max").set(hits)
            snaps.append(reg.snapshot())
        merged = merge_snapshots(
            snaps, extra_labels=[{"shard": "0"}, {"shard": "1"}])
        # Per-shard series stay distinguishable...
        assert sample_value(merged, "hits_total",
                            {"tier": "memory", "shard": "0"}) == 3
        assert sample_value(merged, "hits_total",
                            {"tier": "memory", "shard": "1"}) == 4
        # ...and still sum label-blind.
        assert sample_value(merged, "hits_total") == 7

    def test_merge_without_extra_labels_sums_and_maxes(self):
        snaps = []
        for value in (3, 4):
            reg = MetricsRegistry()
            reg.counter("c_total").inc(value)
            reg.gauge("peak", agg="max").set(value)
            reg.gauge("depth").set(value)
            snaps.append(reg.snapshot())
        merged = merge_snapshots(snaps)
        assert sample_value(merged, "c_total") == 7
        assert sample_value(merged, "peak") == 4
        assert sample_value(merged, "depth") == 7


# -- Prometheus exposition ---------------------------------------------------


class TestExposition:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("repro_hits_total", "Cache hits by tier",
                    labels=("tier",)).inc(5, tier="memory")
        reg.gauge("repro_depth", "Queue depth").set(2)
        h = reg.histogram("repro_lat_seconds", "Latency",
                          buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        return reg.snapshot()

    def test_render_parse_roundtrip(self):
        text = render_exposition(self._snapshot())
        samples = parse_exposition(text)
        by_name = {}
        for s in samples:
            by_name.setdefault(s.name, []).append(s)
        assert by_name["repro_hits_total"][0].labels == {"tier": "memory"}
        assert by_name["repro_hits_total"][0].value == 5
        assert by_name["repro_depth"][0].value == 2
        # Histogram renders cumulative buckets + sum + count.
        les = [s.labels["le"] for s in by_name["repro_lat_seconds_bucket"]]
        assert les == ["0.1", "1", "+Inf"]
        values = [s.value for s in by_name["repro_lat_seconds_bucket"]]
        assert values == [1, 2, 2]
        assert by_name["repro_lat_seconds_count"][0].value == 2

    def test_every_line_is_comment_or_sample(self):
        # The CI obs-smoke contract: every non-blank line must parse.
        text = render_exposition(self._snapshot())
        for line in text.splitlines():
            assert line.startswith("#") or " " in line
        parse_exposition(text)  # raises on any malformed line

    def test_label_escaping_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels=("path",)).inc(
            1, path='tricky "dir"\nwith\\slash')
        (sample,) = parse_exposition(render_exposition(reg.snapshot()))
        assert sample.labels["path"] == 'tricky "dir"\nwith\\slash'

    def test_malformed_line_reports_position(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_exposition("ok_total 1\nnot a metric !!!\n")

    def test_rejects_bad_type_comment(self):
        with pytest.raises(ValueError, match="TYPE"):
            parse_exposition("# TYPE x flotilla\n")


# -- request tracing ---------------------------------------------------------


class TestTracing:
    def test_wall_clock_rebasing(self):
        tracer = RequestTracer(role="client", pid=7)
        t0 = time.monotonic()
        tracer.record("submit", t0, t0 + 0.25, "abc123")
        (span,) = tracer.spans
        assert span.end_ms - span.start_ms == pytest.approx(250.0)
        # Rebased near the wall clock, not near the monotonic origin.
        assert abs(span.start_ms / 1e3 - time.time()) < 60.0

    def test_merged_chrome_validates_with_flows(self):
        client = RequestTracer(role="client", pid=1)
        shard = RequestTracer(role="shard", pid=2)
        trace_id = new_trace_id()
        t = time.monotonic()
        submit = client.record("submit", t, t + 0.4, trace_id)
        shard.record("queue-wait", t + 0.1, t + 0.2, trace_id,
                     parent=submit)
        shard.record("leader-search", t + 0.2, t + 0.35, trace_id,
                     parent=submit)
        merged = merge_obs_chrome([client, shard])
        assert validate_chrome_trace(merged) == []
        flows = [e for e in merged["traceEvents"]
                 if e.get("cat") == "obs-flow"]
        assert {e["ph"] for e in flows} == {"s", "f"}
        starts = [e for e in flows if e["ph"] == "s"]
        finishes = [e for e in flows if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 1
        # The arrow crosses the process boundary.
        assert starts[0]["pid"] != finishes[0]["pid"]
        assert trace_id in starts[0]["name"]

    def test_clients_sort_first(self):
        client = RequestTracer(role="client", pid=9)
        shard = RequestTracer(role="shard", pid=1)
        t = time.monotonic()
        tid = new_trace_id()
        shard.record("queue-wait", t, t + 0.1, tid)
        client.record("submit", t, t + 0.2, tid)
        merged = merge_obs_chrome([shard, client])
        names = {e["pid"]: e["args"]["name"]
                 for e in merged["traceEvents"]
                 if e.get("ph") == "M" and e.get("name") == "process_name"}
        assert names[0].startswith("client")
        assert names[1].startswith("shard")

    def test_merge_trace_files_roundtrip(self, tmp_path):
        tracer = RequestTracer(role="client", pid=4)
        t = time.monotonic()
        tracer.record("submit", t, t + 0.1, new_trace_id())
        path = tmp_path / tracer.default_filename()
        tracer.save(str(path))
        from repro.obs import merge_trace_files
        out = tmp_path / "merged.json"
        merged = merge_trace_files([str(path)], output=str(out))
        assert out.exists()
        assert validate_chrome_trace(merged) == []


# -- ServiceStats.merge edge cases -------------------------------------------


class TestStatsMergeEdgeCases:
    def test_empty_sample_windows(self):
        # Merging stats that never recorded a latency must not divide
        # by zero or invent percentiles.
        a, b = ServiceStats(), ServiceStats()
        a.count("submitted", 2)
        merged = ServiceStats.merge([a, b])
        snap = merged.snapshot()
        assert snap["submitted"] == 2
        assert snap["plan_latency_p50_s"] == 0.0
        assert snap["plan_latency_p99_s"] == 0.0

    def test_merge_of_nothing_is_zero(self):
        snap = ServiceStats.merge([]).snapshot()
        assert snap["submitted"] == 0
        assert snap["queue_depth"] == 0

    def test_single_shard_merge_is_identity(self):
        one = ServiceStats()
        one.count("submitted", 5)
        one.count("searches", 2)
        one.count("memory_hits", 3)
        one.queue_changed(4)
        one.record_latency(0.25, 0.1)
        merged = ServiceStats.merge([one])
        left, right = one.snapshot(True), merged.snapshot(True)
        assert left == right

    def test_overflow_free_summation_across_many_snapshots(self):
        # Python ints don't wrap, but the merge path must also not
        # truncate through float round-trips: 2**53 + small deltas is
        # exactly where doubles start eating increments.
        big = 2 ** 53
        parts = []
        for i in range(9):
            s = ServiceStats()
            s.count("submitted", big + i)
            s.count("completed", 1)
            parts.append(ServiceStats.from_snapshot(s.snapshot()))
        merged = ServiceStats.merge(parts)
        assert merged.submitted == 9 * big + sum(range(9))
        assert merged.completed == 9

    def test_merge_samples_union(self):
        a, b = ServiceStats(), ServiceStats()
        for v in (0.1, 0.2):
            a.record_latency(v, 0.0)
        b.record_latency(9.0, 0.0)
        merged = ServiceStats.merge([a, b])
        assert merged.latency_percentile_s(99) == 9.0


# -- server identity + enriched failover -------------------------------------


class TestShardIdentity:
    def test_ping_reports_identity(self, make_planner, tmp_path):
        service = PlanService(num_workers=1)
        service.register_job("vlm", planner=make_planner())
        server = PlanServiceServer(
            service, uds=str(tmp_path / "id.sock"),
            shard_index=3, restarts=2,
        )
        try:
            client = PlanServiceClient(server.address)
            hello = client.ping()
            assert hello["pid"] == os.getpid()
            assert hello["shard_index"] == 3
            assert hello["restarts"] == 2
            assert hello["uptime_ticks"] >= 0
            assert hello["cache_dir"] == ""  # no disk tier configured
            client.close()
        finally:
            server.close(timeout=10.0)
            service.close()


class TestFailoverEnrichment:
    def test_warning_carries_structure_and_audit_trail(
            self, traced_fleet, make_planner, tmp_path):
        addresses, _tracers = traced_fleet(n=2)
        batch = controlled_batch([4, 8])
        probe = FleetClient(addresses, "vlm", 0, [],
                            planner=make_planner(), timeout_s=30.0)
        prepared = probe.planner.prepare(batch)
        owner = probe.shard_for(prepared.signature.digest)
        owner_position = probe.ring.nodes.index(owner)
        probe.close()

        os.unlink(owner.replace("uds://", ""))  # make the owner vanish
        client = FleetClient(addresses, "vlm", 0, [batch],
                             planner=make_planner(), timeout_s=30.0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            client.run()
        assert not client.errors
        (warning,) = [w.message for w in caught
                      if isinstance(w.message, FleetFailoverWarning)]
        assert warning.address == owner
        assert warning.ring_position == owner_position
        assert warning.attempts == 1

        kinds = [event["kind"] for event in client.audit]
        assert kinds == ["failover", "route"]
        failover, route = client.audit
        assert failover["address"] == owner
        assert failover["ring_position"] == owner_position
        assert failover["attempts"] == 1
        assert route["address"] != owner
        # Timestamp-free monotonic ordering.
        assert [e["seq"] for e in client.audit] == [1, 2]
        client.close()

    def test_clean_run_audits_routes_only(self, traced_fleet,
                                          make_planner):
        addresses, _tracers = traced_fleet(n=2)
        client = FleetClient(addresses, "vlm", 0,
                             [controlled_batch([2])],
                             planner=make_planner(), timeout_s=30.0)
        client.run()
        assert not client.errors
        assert [e["kind"] for e in client.audit] == ["route"]
        client.close()


# -- end to end: trace + metrics through a 2-shard fleet ---------------------


class TestObsEndToEnd:
    def test_traced_request_and_metrics_parity(self, traced_fleet,
                                               make_planner):
        addresses, shard_tracers = traced_fleet(n=2)
        client_tracer = RequestTracer(role="client", pid=1)
        batch = controlled_batch([4, 8])
        client = FleetClient(addresses, "vlm", 0, [batch],
                             planner=make_planner(), timeout_s=30.0,
                             tracer=client_tracer)
        client.run()
        assert not client.errors

        # One trace id spans the client and exactly one owning shard.
        client_spans = client_tracer.spans
        assert [s.name for s in client_spans] == ["submit",
                                                  "client-replay"]
        trace_id = client_spans[0].attrs["trace_id"]
        sources = [client_tracer] + shard_tracers
        spans = spans_for_trace(sources, trace_id)
        names = [s.name for s in spans]
        for expected in ("submit", "queue-wait", "cache-lookup",
                         "leader-search"):
            assert expected in names, names
        shard_roles = {s.attrs["pid"] for s in spans
                       if s.attrs["role"] == "shard"}
        assert len(shard_roles) == 1  # exactly one shard served it

        # The merged Chrome timeline validates and links the processes.
        merged = merge_obs_chrome(sources)
        assert validate_chrome_trace(merged) == []
        flows = [e for e in merged["traceEvents"]
                 if e.get("cat") == "obs-flow"
                 and trace_id in e.get("name", "")]
        assert {e["ph"] for e in flows} == {"s", "f"}
        assert len({e["pid"] for e in flows}) == 2

        # Metrics RPC parity with the stats RPC, on the serving shard.
        owner = client.routes[0][1]
        conn = PlanServiceClient(owner)
        metrics = conn.call("metrics")["metrics"]
        stats = conn.call("stats")["service"]
        conn.close()
        mem = sample_value(metrics, "repro_service_cache_hits_total",
                           {"tier": "memory"})
        disk = sample_value(metrics, "repro_service_cache_hits_total",
                            {"tier": "disk"})
        assert mem == stats["memory_hits"]
        assert disk == stats["disk_hits"]
        assert sample_value(metrics,
                            "repro_service_submitted_total") == 1
        assert sample_value(metrics, "repro_rpc_frames_total") > 0
        client.close()

    def test_scrape_check_and_report(self, traced_fleet, make_planner):
        addresses, _tracers = traced_fleet(n=2)
        batches = [controlled_batch([n]) for n in (2, 4)]
        # Two replicas over the same batches: hits + coalescing happen.
        for replica in range(2):
            client = FleetClient(addresses, "vlm", replica, batches,
                                 planner=make_planner(), timeout_s=30.0)
            client.run()
            assert not client.errors
            client.close()

        scrapes = scrape_fleet(addresses, timeout_s=30.0)
        assert all(s.ok for s in scrapes)
        assert check_scrape(scrapes) == []

        merged = merged_snapshot(scrapes)
        # Shard labels keep per-shard series apart and the exposition
        # renders every line parseable.
        samples = parse_exposition(render_exposition(merged))
        assert samples
        shard_labels = {s.labels.get("shard") for s in samples
                        if "shard" in s.labels}
        assert shard_labels == {"0", "1"}
        total = sum(s.value for s in samples
                    if s.name == "repro_service_completed_total")
        assert total == 4  # 2 replicas x 2 batches

        report = render_report(scrapes)
        assert "2/2 shards up" in report
        assert "shard 0" in report and "shard 1" in report

    def test_scrape_survives_dead_shard(self, traced_fleet,
                                        make_planner):
        addresses, _tracers = traced_fleet(n=2)
        os.unlink(addresses[0].replace("uds://", ""))
        scrapes = scrape_fleet(addresses, timeout_s=5.0)
        assert [s.ok for s in scrapes] == [False, True]
        problems = check_scrape(scrapes)
        assert len(problems) == 1 and "unreachable" in problems[0]
        assert "DOWN" in render_report(scrapes)
