"""Tests for the modality-aware partitioner (section 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioner import (
    ModalityPartitioner,
    fixed_sub_batch_plan,
    split_layers,
)
from repro.core.planner import reference_microbatch
from repro.data.packing import controlled_vlm_microbatch


class TestSplitLayers:
    def test_even_split(self):
        assert split_layers(8, 4) == [2, 2, 2, 2]

    def test_remainder_goes_first(self):
        assert split_layers(10, 4) == [3, 3, 2, 2]

    def test_total_preserved(self):
        for layers in range(1, 40):
            for chunks in range(1, layers + 1):
                assert sum(split_layers(layers, chunks)) == layers

    def test_rejects_too_many_chunks(self):
        with pytest.raises(ValueError):
            split_layers(3, 4)

    def test_rejects_zero_chunks(self):
        with pytest.raises(ValueError):
            split_layers(3, 0)

    @settings(max_examples=40, deadline=None)
    @given(layers=st.integers(1, 128), chunks=st.integers(1, 32))
    def test_property_balanced(self, layers, chunks):
        if layers < chunks:
            return
        parts = split_layers(layers, chunks)
        assert max(parts) - min(parts) <= 1
        assert sum(parts) == layers


class TestSubBatchProfiling:
    def test_vit_gets_finite_sub_batch(self, vlm_setup):
        arch, plan, _ = vlm_setup
        mp = plan.partition("tiny-vit")
        assert mp.sub_batch_size is not None
        assert 1 <= mp.sub_batch_size <= 48

    def test_text_module_not_splittable(self, vlm_setup):
        arch, plan, _ = vlm_setup
        assert plan.partition("tiny-lm").sub_batch_size is None

    def test_profiler_respects_efficiency_threshold(
        self, tiny_vlm, small_cluster, parallel2, cost_model
    ):
        strict = ModalityPartitioner(
            tiny_vlm, small_cluster, parallel2, cost_model,
            efficiency_threshold=0.999,
        )
        loose = ModalityPartitioner(
            tiny_vlm, small_cluster, parallel2, cost_model,
            efficiency_threshold=0.5,
        )
        ref = reference_microbatch("vlm")
        b_strict = strict.profile_sub_batch_size(
            tiny_vlm.binding("tiny-vit"), ref
        )
        b_loose = loose.profile_sub_batch_size(tiny_vlm.binding("tiny-vit"), ref)
        assert b_loose <= b_strict  # looser threshold -> smaller batches OK

    def test_empty_reference_rejected(self, vlm_setup):
        arch, _, partitioner = vlm_setup
        empty = controlled_vlm_microbatch(0, 0)
        with pytest.raises(ValueError):
            partitioner.profile_sub_batch_size(arch.binding("tiny-vit"), empty)


class TestPlan:
    def test_chunks_cover_all_layers(self, vlm_setup):
        arch, plan, _ = vlm_setup
        for binding in arch.bindings:
            mp = plan.partition(binding.name)
            assert sum(mp.layers_per_chunk) == binding.spec.num_layers
            assert len(mp.layers_per_chunk) == plan.num_ranks * mp.num_segments

    def test_segments_at_least_one(self, vlm_setup):
        _, plan, _ = vlm_setup
        for mp in plan.modules.values():
            assert mp.num_segments >= 1

    def test_chunk_layers_accessor(self, vlm_setup):
        _, plan, _ = vlm_setup
        mp = plan.partition("tiny-lm")
        flattened = [
            mp.chunk_layers(seg, rank, plan.num_ranks)
            for seg in range(mp.num_segments)
            for rank in range(plan.num_ranks)
        ]
        assert flattened == list(mp.layers_per_chunk)

    def test_describe_mentions_modules(self, vlm_setup):
        _, plan, _ = vlm_setup
        text = plan.describe()
        assert "tiny-vit" in text and "tiny-lm" in text


class TestSplitMicrobatch:
    def test_uniform_split(self, vlm_setup):
        arch, plan, partitioner = vlm_setup
        mb = controlled_vlm_microbatch(0, 10)
        splits = partitioner.split_microbatch(plan, mb)
        vit = splits["tiny-vit"]
        b = plan.partition("tiny-vit").sub_batch_size
        assert sum(vit) == 10
        assert len(vit) == -(-10 // b)
        assert max(vit) - min(vit) <= 1  # uniform partitioning

    def test_zero_instances_empty(self, vlm_setup):
        arch, plan, partitioner = vlm_setup
        mb = controlled_vlm_microbatch(0, 0)
        splits = partitioner.split_microbatch(plan, mb)
        assert splits["tiny-vit"] == []
        assert splits["tiny-lm"] == [1]

    @settings(max_examples=30, deadline=None)
    @given(images=st.integers(1, 48))
    def test_property_split_conserves_instances(self, images):
        # Rebuild fixtures manually (hypothesis + fixtures don't mix).
        from tests.conftest import TINY_LM, TINY_VIT
        from repro.cluster.devices import GPU_H800_80G
        from repro.cluster.topology import ClusterSpec, ParallelConfig
        from repro.models.lmm import build_vlm
        from repro.sim.costmodel import CostModel

        arch = build_vlm(TINY_VIT, TINY_LM)
        cluster = ClusterSpec(gpu=GPU_H800_80G, gpus_per_node=4)
        parallel = ParallelConfig(dp=1, tp=1, pp=2)
        partitioner = ModalityPartitioner(arch, cluster, parallel, CostModel())
        plan = partitioner.plan(reference_microbatch("vlm"))
        splits = partitioner.split_microbatch(
            plan, controlled_vlm_microbatch(0, images)
        )
        counts = splits["tiny-vit"]
        assert sum(counts) == images
        assert all(c >= 1 for c in counts)
        assert max(counts) - min(counts) <= 1


class TestFixedSubBatchPlan:
    def test_override_applies(self, vlm_setup, small_cluster, parallel2, cost_model):
        arch, _, partitioner = vlm_setup
        ref = reference_microbatch("vlm")
        plan = fixed_sub_batch_plan(partitioner, ref, {"tiny-vit": 4})
        assert plan.partition("tiny-vit").sub_batch_size == 4

    def test_override_changes_split(self, vlm_setup):
        arch, _, partitioner = vlm_setup
        ref = reference_microbatch("vlm")
        plan4 = fixed_sub_batch_plan(partitioner, ref, {"tiny-vit": 4})
        plan12 = fixed_sub_batch_plan(partitioner, ref, {"tiny-vit": 12})
        mb = controlled_vlm_microbatch(0, 24)
        s4 = partitioner.split_microbatch(plan4, mb)["tiny-vit"]
        s12 = partitioner.split_microbatch(plan12, mb)["tiny-vit"]
        assert len(s4) == 6
        assert len(s12) == 2
