"""Tests for the pipeline discrete-event simulator (hand-checked cases)."""

import pytest

from repro.cluster.devices import GPU_H800_80G
from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.stages import (
    Direction,
    IterationGraph,
    SegmentKey,
    StagePair,
    StageTask,
)
from repro.sim.costmodel import CostModel, StageCost
from repro.sim.pipeline import (
    ScheduleDeadlockError,
    simulate_pipeline,
)


def make_cost(fw=10.0, bw=20.0, act=100.0):
    return StageCost(
        forward_ms=fw,
        backward_ms=bw,
        act_bytes=act,
        act_ckpt_bytes=act / 10,
        recompute_ms=fw,
        offload_ms=fw / 2,
        p2p_bytes=0.0,
    )


def two_rank_graph(fw=10.0, bw=20.0, act=100.0, limit=1e12):
    """One microbatch: fw r0 -> fw r1 -> bw r1 -> bw r0."""
    pairs = [
        StagePair(0, 0, "m", 0, 0, rank=0, num_layers=1, cost=make_cost(fw, bw, act)),
        StagePair(1, 0, "m", 0, 0, rank=1, num_layers=1, cost=make_cost(fw, bw, act)),
    ]
    stages = [
        StageTask(0, SegmentKey(0, "m", 0, 0, Direction.FORWARD), 0, 0, ()),
        StageTask(1, SegmentKey(0, "m", 0, 0, Direction.FORWARD), 1, 1, (0,)),
        StageTask(2, SegmentKey(0, "m", 0, 0, Direction.BACKWARD), 1, 1, (1,)),
        StageTask(3, SegmentKey(0, "m", 0, 0, Direction.BACKWARD), 0, 0, (2,)),
    ]
    return IterationGraph(
        num_ranks=2,
        stages=stages,
        pairs=pairs,
        static_bytes_per_rank=[0.0, 0.0],
        memory_limit_bytes=limit,
    )


@pytest.fixture
def small_env():
    cluster = ClusterSpec(gpu=GPU_H800_80G, gpus_per_node=4)
    parallel = ParallelConfig(dp=1, tp=1, pp=2)
    return cluster, parallel


class TestHandComputedTimelines:
    def test_sequential_chain(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph(fw=10.0, bw=20.0)
        order = [[0, 3], [1, 2]]
        result = simulate_pipeline(graph, order, cluster, parallel, CostModel())
        # fw0: 0-10, fw1: 10-20, bw1: 20-40, bw0: 40-60 (p2p_bytes=0).
        assert result.start_ms[0] == 0.0
        assert result.start_ms[1] == pytest.approx(10.0)
        assert result.start_ms[2] == pytest.approx(20.0)
        assert result.start_ms[3] == pytest.approx(40.0)
        assert result.total_ms == pytest.approx(60.0)

    def test_bubble_ratio(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph(fw=10.0, bw=20.0)
        result = simulate_pipeline(graph, [[0, 3], [1, 2]], cluster, parallel)
        # Each rank busy 30ms of 60ms -> idle 0.5.
        assert result.bubble_ratio == pytest.approx(0.5)

    def test_p2p_latency_added(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph(fw=10.0, bw=20.0)
        graph.stages[1].p2p_bytes = 200e6  # 200 MB over NVLink
        cm = CostModel()
        expected_hop = cm.p2p_latency_ms(200e6, cluster.gpu.nvlink_bandwidth)
        result = simulate_pipeline(graph, [[0, 3], [1, 2]], cluster, parallel, cm)
        assert result.start_ms[1] == pytest.approx(10.0 + expected_hop)

    def test_memory_accounting(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph(act=500.0)
        result = simulate_pipeline(graph, [[0, 3], [1, 2]], cluster, parallel)
        # Each rank holds one pair's activations at peak.
        assert result.peak_memory_bytes[0] == pytest.approx(500.0)
        assert result.peak_memory_bytes[1] == pytest.approx(500.0)
        assert result.memory_exceeded == []

    def test_memory_limit_flagged(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph(act=500.0, limit=400.0)
        result = simulate_pipeline(graph, [[0, 3], [1, 2]], cluster, parallel)
        assert result.memory_exceeded == [0, 1]

    def test_static_memory_included(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph(act=100.0)
        graph.static_bytes_per_rank = [1000.0, 2000.0]
        result = simulate_pipeline(graph, [[0, 3], [1, 2]], cluster, parallel)
        assert result.peak_memory_bytes[0] == pytest.approx(1100.0)
        assert result.peak_memory_bytes[1] == pytest.approx(2100.0)

    def test_jitter_applied(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph(fw=10.0, bw=20.0)
        result = simulate_pipeline(
            graph, [[0, 3], [1, 2]], cluster, parallel,
            jitter=lambda uid, ms: ms * 2.0,
        )
        assert result.total_ms == pytest.approx(120.0)


class TestOrderValidation:
    def test_deadlock_detected(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph()
        # Rank 0 schedules bw before fw: circular wait with rank 1.
        with pytest.raises(ScheduleDeadlockError):
            simulate_pipeline(graph, [[3, 0], [1, 2]], cluster, parallel)

    def test_missing_stage_rejected(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph()
        with pytest.raises(ValueError, match="misses"):
            simulate_pipeline(graph, [[0], [1, 2]], cluster, parallel)

    def test_duplicate_stage_rejected(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph()
        with pytest.raises(ValueError, match="twice"):
            simulate_pipeline(graph, [[0, 3, 0], [1, 2]], cluster, parallel)

    def test_wrong_rank_rejected(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph()
        with pytest.raises(ValueError, match="belongs"):
            simulate_pipeline(graph, [[0, 3, 1], [2]], cluster, parallel)

    def test_wrong_rank_count_rejected(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph()
        with pytest.raises(ValueError, match="ranks"):
            simulate_pipeline(graph, [[0, 3], [1], [2]], cluster, parallel)


class TestGraphValidation:
    def test_dep_on_later_stage_rejected(self):
        pairs = [StagePair(0, 0, "m", 0, 0, rank=0, num_layers=1, cost=make_cost())]
        stages = [
            StageTask(0, SegmentKey(0, "m", 0, 0, Direction.FORWARD), 0, 0, (1,)),
            StageTask(1, SegmentKey(0, "m", 0, 0, Direction.BACKWARD), 0, 0, ()),
        ]
        with pytest.raises(ValueError, match="topological"):
            IterationGraph(1, stages, pairs, [0.0], 1e12)

    def test_bad_rank_rejected(self):
        pairs = [StagePair(0, 0, "m", 0, 0, rank=0, num_layers=1, cost=make_cost())]
        stages = [
            StageTask(0, SegmentKey(0, "m", 0, 0, Direction.FORWARD), 5, 0, ()),
        ]
        with pytest.raises(ValueError, match="invalid rank"):
            IterationGraph(1, stages, pairs, [0.0], 1e12)

    def test_uid_mismatch_rejected(self):
        pairs = [StagePair(0, 0, "m", 0, 0, rank=0, num_layers=1, cost=make_cost())]
        stages = [
            StageTask(3, SegmentKey(0, "m", 0, 0, Direction.FORWARD), 0, 0, ()),
        ]
        with pytest.raises(ValueError, match="uid"):
            IterationGraph(1, stages, pairs, [0.0], 1e12)
