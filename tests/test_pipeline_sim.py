"""Tests for the pipeline discrete-event simulator (hand-checked cases)."""

import pytest

from repro.cluster.devices import GPU_H800_80G
from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.stages import (
    Direction,
    IterationGraph,
    SegmentKey,
    StagePair,
    StageTask,
)
from repro.sim.costmodel import CostModel, StageCost
from repro.sim.pipeline import (
    ScheduleDeadlockError,
    simulate_pipeline,
)


def make_cost(fw=10.0, bw=20.0, act=100.0):
    return StageCost(
        forward_ms=fw,
        backward_ms=bw,
        act_bytes=act,
        act_ckpt_bytes=act / 10,
        recompute_ms=fw,
        offload_ms=fw / 2,
        p2p_bytes=0.0,
    )


def two_rank_graph(fw=10.0, bw=20.0, act=100.0, limit=1e12):
    """One microbatch: fw r0 -> fw r1 -> bw r1 -> bw r0."""
    pairs = [
        StagePair(0, 0, "m", 0, 0, rank=0, num_layers=1, cost=make_cost(fw, bw, act)),
        StagePair(1, 0, "m", 0, 0, rank=1, num_layers=1, cost=make_cost(fw, bw, act)),
    ]
    stages = [
        StageTask(0, SegmentKey(0, "m", 0, 0, Direction.FORWARD), 0, 0, ()),
        StageTask(1, SegmentKey(0, "m", 0, 0, Direction.FORWARD), 1, 1, (0,)),
        StageTask(2, SegmentKey(0, "m", 0, 0, Direction.BACKWARD), 1, 1, (1,)),
        StageTask(3, SegmentKey(0, "m", 0, 0, Direction.BACKWARD), 0, 0, (2,)),
    ]
    return IterationGraph(
        num_ranks=2,
        stages=stages,
        pairs=pairs,
        static_bytes_per_rank=[0.0, 0.0],
        memory_limit_bytes=limit,
    )


@pytest.fixture
def small_env():
    cluster = ClusterSpec(gpu=GPU_H800_80G, gpus_per_node=4)
    parallel = ParallelConfig(dp=1, tp=1, pp=2)
    return cluster, parallel


class TestHandComputedTimelines:
    def test_sequential_chain(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph(fw=10.0, bw=20.0)
        order = [[0, 3], [1, 2]]
        result = simulate_pipeline(graph, order, cluster, parallel, CostModel())
        # fw0: 0-10, fw1: 10-20, bw1: 20-40, bw0: 40-60 (p2p_bytes=0).
        assert result.start_ms[0] == 0.0
        assert result.start_ms[1] == pytest.approx(10.0)
        assert result.start_ms[2] == pytest.approx(20.0)
        assert result.start_ms[3] == pytest.approx(40.0)
        assert result.total_ms == pytest.approx(60.0)

    def test_bubble_ratio(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph(fw=10.0, bw=20.0)
        result = simulate_pipeline(graph, [[0, 3], [1, 2]], cluster, parallel)
        # Each rank busy 30ms of 60ms -> idle 0.5.
        assert result.bubble_ratio == pytest.approx(0.5)

    def test_p2p_latency_added(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph(fw=10.0, bw=20.0)
        graph.stages[1].p2p_bytes = 200e6  # 200 MB over NVLink
        cm = CostModel()
        expected_hop = cm.p2p_latency_ms(200e6, cluster.gpu.nvlink_bandwidth)
        result = simulate_pipeline(graph, [[0, 3], [1, 2]], cluster, parallel, cm)
        assert result.start_ms[1] == pytest.approx(10.0 + expected_hop)

    def test_memory_accounting(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph(act=500.0)
        result = simulate_pipeline(graph, [[0, 3], [1, 2]], cluster, parallel)
        # Each rank holds one pair's activations at peak.
        assert result.peak_memory_bytes[0] == pytest.approx(500.0)
        assert result.peak_memory_bytes[1] == pytest.approx(500.0)
        assert result.memory_exceeded == []

    def test_memory_limit_flagged(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph(act=500.0, limit=400.0)
        result = simulate_pipeline(graph, [[0, 3], [1, 2]], cluster, parallel)
        assert result.memory_exceeded == [0, 1]

    def test_static_memory_included(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph(act=100.0)
        graph.static_bytes_per_rank = [1000.0, 2000.0]
        result = simulate_pipeline(graph, [[0, 3], [1, 2]], cluster, parallel)
        assert result.peak_memory_bytes[0] == pytest.approx(1100.0)
        assert result.peak_memory_bytes[1] == pytest.approx(2100.0)

    def test_jitter_applied(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph(fw=10.0, bw=20.0)
        result = simulate_pipeline(
            graph, [[0, 3], [1, 2]], cluster, parallel,
            jitter=lambda uid, ms: ms * 2.0,
        )
        assert result.total_ms == pytest.approx(120.0)


class TestOrderValidation:
    def test_deadlock_detected(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph()
        # Rank 0 schedules bw before fw: circular wait with rank 1.
        with pytest.raises(ScheduleDeadlockError):
            simulate_pipeline(graph, [[3, 0], [1, 2]], cluster, parallel)

    def test_deadlock_message_names_stuck_ranks(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph()
        with pytest.raises(ScheduleDeadlockError) as excinfo:
            simulate_pipeline(graph, [[3, 0], [1, 2]], cluster, parallel)
        message = str(excinfo.value)
        # Both stuck ranks and their waiting stage uids must be named:
        # rank 0 waits on bw stage 3 (needs 2), rank 1 on fw stage 1
        # (needs 0, queued behind 3 on rank 0).
        assert "rank 0 -> stage 3" in message
        assert "rank 1 -> stage 1" in message

    def test_deadlock_error_is_runtime_error(self):
        # Callers catching RuntimeError (e.g. validate_schedule) rely on
        # the subclassing.
        assert issubclass(ScheduleDeadlockError, RuntimeError)

    def test_missing_stage_rejected(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph()
        with pytest.raises(ValueError, match="misses"):
            simulate_pipeline(graph, [[0], [1, 2]], cluster, parallel)

    def test_duplicate_stage_rejected(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph()
        with pytest.raises(ValueError, match="twice"):
            simulate_pipeline(graph, [[0, 3, 0], [1, 2]], cluster, parallel)

    def test_wrong_rank_rejected(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph()
        with pytest.raises(ValueError, match="belongs"):
            simulate_pipeline(graph, [[0, 3, 1], [2]], cluster, parallel)

    def test_wrong_rank_count_rejected(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph()
        with pytest.raises(ValueError, match="ranks"):
            simulate_pipeline(graph, [[0, 3], [1], [2]], cluster, parallel)

    def test_duplicate_error_names_stage(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph()
        with pytest.raises(ValueError, match="stage 3 appears twice"):
            simulate_pipeline(graph, [[0, 3, 3], [1, 2]], cluster, parallel)

    def test_wrong_rank_error_names_both_ranks(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph()
        # Stage 1 belongs to rank 1 but is listed under rank 0.
        with pytest.raises(ValueError,
                           match="stage 1 belongs to rank 1.*rank 0"):
            simulate_pipeline(graph, [[0, 3, 1], [2]], cluster, parallel)

    def test_missing_error_counts_stages(self, small_env):
        cluster, parallel = small_env
        graph = two_rank_graph()
        with pytest.raises(ValueError, match="misses 2 stages"):
            simulate_pipeline(graph, [[0], [1]], cluster, parallel)


class TestRoundRobinHelper:
    """The shared progress loop used by the simulator and the engine."""

    def test_advances_until_done(self):
        from repro.progress import drive_round_robin

        work = [[1, 1], [1, 1, 1]]
        done = []

        def advance(rank):
            if work[rank]:
                done.append(rank)
                work[rank].pop()
                return 1
            return 0

        drive_round_robin(2, 5, advance, lambda: "stuck", RuntimeError)
        assert len(done) == 5

    def test_raises_on_no_progress(self):
        from repro.progress import drive_round_robin

        class Boom(RuntimeError):
            pass

        with pytest.raises(Boom, match="nothing moved"):
            drive_round_robin(2, 3, lambda rank: 0,
                              lambda: "nothing moved", Boom)

    def test_format_stuck_ranks_truncates(self):
        from repro.progress import format_stuck_ranks

        waiting = [(r, r * 10) for r in range(12)]
        message = format_stuck_ranks(waiting, "stage", limit=3)
        assert "rank 0 -> stage 0" in message
        assert "rank 2 -> stage 20" in message
        assert message.endswith(", ...")
        assert "rank 3" not in message


class TestGraphValidation:
    def test_dep_on_later_stage_rejected(self):
        pairs = [StagePair(0, 0, "m", 0, 0, rank=0, num_layers=1, cost=make_cost())]
        stages = [
            StageTask(0, SegmentKey(0, "m", 0, 0, Direction.FORWARD), 0, 0, (1,)),
            StageTask(1, SegmentKey(0, "m", 0, 0, Direction.BACKWARD), 0, 0, ()),
        ]
        with pytest.raises(ValueError, match="topological"):
            IterationGraph(1, stages, pairs, [0.0], 1e12)

    def test_bad_rank_rejected(self):
        pairs = [StagePair(0, 0, "m", 0, 0, rank=0, num_layers=1, cost=make_cost())]
        stages = [
            StageTask(0, SegmentKey(0, "m", 0, 0, Direction.FORWARD), 5, 0, ()),
        ]
        with pytest.raises(ValueError, match="invalid rank"):
            IterationGraph(1, stages, pairs, [0.0], 1e12)

    def test_uid_mismatch_rejected(self):
        pairs = [StagePair(0, 0, "m", 0, 0, rank=0, num_layers=1, cost=make_cost())]
        stages = [
            StageTask(3, SegmentKey(0, "m", 0, 0, Direction.FORWARD), 0, 0, ()),
        ]
        with pytest.raises(ValueError, match="uid"):
            IterationGraph(1, stages, pairs, [0.0], 1e12)
