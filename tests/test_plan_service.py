"""Tests for the concurrent planning service (src/repro/service/)."""

import pytest

from repro.core.plancache import PlanCache
from repro.core.planner import OnlinePlanner
from repro.core.searcher import ScheduleSearcher
from repro.data.batching import GlobalBatch
from repro.data.packing import controlled_vlm_microbatch
from repro.data.workload import vlm_workload
from repro.service import (
    OUTCOME_COALESCED,
    OUTCOME_HIT,
    OUTCOME_SEARCH,
    PlanService,
    RecalibrationPolicy,
    ServiceClosedError,
    ServiceOverloadError,
    drive_replicas,
    observed_execution,
    run_recalibrating_replica,
)
from repro.service.stats import percentile
from repro.sim.reference import ReferenceCostModel


def controlled_batch(image_counts, start_index=0):
    return GlobalBatch([
        controlled_vlm_microbatch(index=start_index + i, num_images=count)
        for i, count in enumerate(image_counts)
    ])


def make_service(tiny_vlm, small_cluster, parallel2, cost_model,
                 jobs=("vlm",), budget=8, **service_kwargs):
    service_kwargs.setdefault("num_workers", 0)
    service = PlanService(**service_kwargs)
    for job in jobs:
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=budget, seed=0)
        service.register_job(job, arch=tiny_vlm, cluster=small_cluster,
                             parallel=parallel2, cost_model=cost_model,
                             searcher=searcher)
    return service


class TestSubmission:
    def test_submit_and_step(self, tiny_vlm, small_cluster, parallel2,
                             cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model)
        ticket = service.submit("vlm", controlled_batch([4, 8]))
        assert not ticket.done()
        assert service.step()
        assert not service.step()  # queue drained
        result = ticket.result(timeout=1)
        assert result.total_ms > 0
        assert ticket.outcome == OUTCOME_SEARCH
        assert ticket.latency_s >= 0
        service.close()

    def test_repeat_batch_replays_from_cache(self, tiny_vlm, small_cluster,
                                             parallel2, cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model)
        first = service.submit("vlm", controlled_batch([4, 8]))
        service.step()
        second = service.submit("vlm", controlled_batch([4, 8], start_index=3))
        service.step()
        assert first.outcome == OUTCOME_SEARCH
        assert second.outcome == OUTCOME_HIT
        assert second.result(1).total_ms == pytest.approx(
            first.result(1).total_ms)
        assert service.stats.searches == 1
        assert service.stats.replays == 1
        service.close()

    def test_unknown_job_raises(self, tiny_vlm, small_cluster, parallel2,
                                cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model)
        with pytest.raises(KeyError):
            service.submit("nope", controlled_batch([4]))
        service.close()

    def test_duplicate_job_rejected(self, tiny_vlm, small_cluster, parallel2,
                                    cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model)
        with pytest.raises(ValueError, match="already registered"):
            service.register_job("vlm", arch=tiny_vlm, cluster=small_cluster,
                                 parallel=parallel2)
        service.close()

    def test_closed_service_rejects(self, tiny_vlm, small_cluster, parallel2,
                                    cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit("vlm", controlled_batch([4]))

    def test_close_fails_outstanding_tickets(self, tiny_vlm, small_cluster,
                                             parallel2, cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model)
        ticket = service.submit("vlm", controlled_batch([4, 8]))
        service.close()
        with pytest.raises(ServiceClosedError):
            ticket.result(timeout=1)
        assert service.stats.failed == 1


class TestCoalescing:
    def test_identical_requests_share_one_search(self, tiny_vlm,
                                                 small_cluster, parallel2,
                                                 cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model)
        tickets = [
            service.submit("vlm", controlled_batch([4, 8], start_index=i),
                           replica=i)
            for i in range(4)
        ]
        # One leader in the queue; three waiters riding it.
        assert service.queue_depth == 1
        service.step()
        results = [t.result(timeout=1) for t in tickets]
        assert tickets[0].outcome == OUTCOME_SEARCH
        assert all(t.outcome == OUTCOME_COALESCED for t in tickets[1:])
        assert service.stats.searches == 1
        assert service.stats.coalesced == 3
        assert service.stats.coalesce_rate == pytest.approx(0.75)
        makespans = {round(r.total_ms, 9) for r in results}
        assert len(makespans) == 1
        # Waiters replayed onto their own graphs, not handed the
        # leader's object.
        graphs = {id(r.schedule.graph) for r in results}
        assert len(graphs) == len(results)
        service.close()

    def test_different_batches_do_not_coalesce(self, tiny_vlm, small_cluster,
                                               parallel2, cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model)
        service.submit("vlm", controlled_batch([4, 8]))
        service.submit("vlm", controlled_batch([4, 9]))
        assert service.queue_depth == 2
        service.close()

    def test_coalesce_disabled(self, tiny_vlm, small_cluster, parallel2,
                               cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model,
                               coalesce=False)
        service.submit("vlm", controlled_batch([4, 8]))
        service.submit("vlm", controlled_batch([4, 8]))
        assert service.queue_depth == 2
        service.close()


class TestAdmissionControl:
    def test_full_queue_rejects(self, tiny_vlm, small_cluster, parallel2,
                                cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model,
                               max_queue=2)
        service.submit("vlm", controlled_batch([2]))
        service.submit("vlm", controlled_batch([4]))
        with pytest.raises(ServiceOverloadError):
            service.submit("vlm", controlled_batch([8]))
        assert service.stats.rejected == 1
        service.close()

    def test_coalesced_requests_bypass_admission(self, tiny_vlm,
                                                 small_cluster, parallel2,
                                                 cost_model):
        """Identical requests ride the pending leader even when the
        queue is saturated — coalescing is what makes the multi-replica
        regime admissible at all."""
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model,
                               max_queue=1)
        leader = service.submit("vlm", controlled_batch([4, 8]))
        rider = service.submit("vlm", controlled_batch([4, 8], start_index=9))
        service.step()
        assert leader.outcome == OUTCOME_SEARCH
        assert rider.outcome == OUTCOME_COALESCED
        service.close()

    def test_blocking_submit_times_out(self, tiny_vlm, small_cluster,
                                       parallel2, cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model,
                               max_queue=1)
        service.submit("vlm", controlled_batch([2]))
        with pytest.raises(ServiceOverloadError, match="queue space"):
            service.submit("vlm", controlled_batch([4]), block=True,
                           timeout=0.05)
        service.close()

    def test_priorities_order_the_queue(self, tiny_vlm, small_cluster,
                                        parallel2, cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model,
                               max_queue=8)
        low = service.submit("vlm", controlled_batch([2]), priority=5)
        high = service.submit("vlm", controlled_batch([4]), priority=0)
        service.step()
        assert high.done() and not low.done()
        service.step()
        assert low.done()
        service.close()

    def test_prewarm_runs_last_and_warms_cache(self, tiny_vlm, small_cluster,
                                               parallel2, cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model)
        warm = service.prewarm("vlm", controlled_batch([6, 6]))
        urgent = service.submit("vlm", controlled_batch([2]))
        service.step()
        assert urgent.done() and not warm.done()
        service.step()
        assert warm.done()
        assert service.stats.prewarms == 1
        # The anticipated batch now replays instead of searching.
        real = service.submit("vlm", controlled_batch([6, 6], start_index=4))
        service.step()
        assert real.outcome == OUTCOME_HIT
        service.close()

    def test_urgent_waiter_promotes_prewarm_leader(self, tiny_vlm,
                                                   small_cluster, parallel2,
                                                   cost_model):
        """A client coalescing onto a queued background prewarm must not
        inherit its last-place priority."""
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model)
        warm = service.prewarm("vlm", controlled_batch([6, 6]))
        other = service.submit("vlm", controlled_batch([2]), priority=3)
        rider = service.submit("vlm", controlled_batch([6, 6], start_index=9),
                               priority=0)
        assert service.queue_depth == 2  # rider coalesced, not queued
        service.step()
        # The promoted leader (and its rider) beat the priority-3 request.
        assert warm.done() and rider.done() and not other.done()
        assert rider.outcome == OUTCOME_COALESCED
        service.step()
        assert other.done()
        assert not service.step()  # the stale heap reference was skipped
        service.close()

    def test_prewarm_overload_is_silent(self, tiny_vlm, small_cluster,
                                        parallel2, cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model,
                               max_queue=1)
        service.submit("vlm", controlled_batch([2]))
        assert service.prewarm("vlm", controlled_batch([4])) is None
        assert service.stats.prewarms == 0
        service.close()


class TestMultiJob:
    def test_two_jobs_share_the_cache(self, tiny_vlm, tiny_t2v, small_cluster,
                                      parallel2, cost_model):
        from repro.data.workload import t2v_workload

        service = PlanService(num_workers=0)
        for name, arch in (("vlm", tiny_vlm), ("t2v", tiny_t2v)):
            service.register_job(
                name, arch=arch, cluster=small_cluster, parallel=parallel2,
                cost_model=cost_model,
                searcher=ScheduleSearcher(small_cluster, parallel2,
                                          cost_model, budget_evaluations=6,
                                          seed=0))
        vlm_batch = vlm_workload(2, seed=0).next_batch()
        t2v_batch = t2v_workload(2, seed=0).next_batch()
        tickets = [service.submit("vlm", vlm_batch),
                   service.submit("t2v", t2v_batch)]
        while service.step():
            pass
        assert all(t.outcome == OUTCOME_SEARCH for t in tickets)
        assert len(service.cache) == 2  # both jobs' plans in one store
        assert service.job("vlm").planner.cache is service.cache
        assert service.job("t2v").planner.cache is service.cache
        service.close()

    def test_prebuilt_planner_rebinds_to_shared_cache(self, tiny_vlm,
                                                      small_cluster,
                                                      parallel2, cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=6, seed=0)
        private = PlanCache(capacity=4)
        planner = OnlinePlanner(tiny_vlm, small_cluster, parallel2,
                                cost_model, searcher=searcher,
                                plan_cache=private)
        service = PlanService(num_workers=0)
        service.register_job("vlm", planner=planner)
        assert planner.cache is service.cache
        assert planner.cache is not private
        service.close()

    def test_threaded_drive_identical_makespans(self, tiny_vlm, small_cluster,
                                                parallel2, cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model,
                               num_workers=2, max_queue=32)
        batches = vlm_workload(2, seed=0).batches(2)
        report = drive_replicas(service, {"vlm": batches}, replicas=3,
                                timeout_s=60)
        assert not report.errors
        assert len(report.records) == 6
        for i in range(2):
            makespans = report.makespans("vlm", i)
            assert len(makespans) == 3
            assert max(makespans) - min(makespans) < 1e-9
        # Exactly one search per distinct batch; the rest replayed or
        # coalesced.
        assert service.stats.searches == 2
        service.close()


class TestRecalibration:
    def test_observe_without_policy_is_noop(self, tiny_vlm, small_cluster,
                                            parallel2, cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model)
        ticket = service.submit("vlm", controlled_batch([4, 8]))
        service.step()
        reference = ReferenceCostModel(seed=7)
        trace = observed_execution(service, "vlm", ticket.result(1),
                                   reference)
        assert service.observe("vlm", trace) is None
        service.close()

    def test_loop_reduces_sim_error_and_invalidates(self, tiny_vlm,
                                                    small_cluster, parallel2,
                                                    cost_model):
        service = make_service(
            tiny_vlm, small_cluster, parallel2, cost_model,
            num_workers=1, budget=6,
            recalibration=RecalibrationPolicy(interval=2, window=4, sweeps=1),
        )
        reference = ReferenceCostModel(seed=7)
        batches = vlm_workload(2, seed=3).batches(5)
        report = run_recalibrating_replica(service, "vlm", batches, reference,
                                           timeout_s=120)
        errors = [r.sim_error for r in report.records]
        assert all(e is not None for e in errors)
        applied = [e for e in report.recal_events if e.applied]
        assert applied, "no recalibration was applied"
        # After the first applied refit, prediction error drops below
        # the pre-calibration level.
        first_applied = applied[0].observation
        before = errors[:first_applied]
        after = errors[first_applied:]
        assert after, "no iterations planned after recalibration"
        assert min(after) < min(before)
        assert sum(after) / len(after) < sum(before) / len(before)
        # Stale-context entries were evicted and telemetry reflects it.
        assert applied[0].invalidated >= 1
        assert service.cache.stats.invalidations >= 1
        assert service.stats.recalibrations >= 1
        # The planner actually switched models.
        assert service.job("vlm").planner.cost_model is not cost_model
        service.close()

    def test_engine_observation_differs_from_prediction(self, tiny_vlm,
                                                        small_cluster,
                                                        parallel2,
                                                        cost_model):
        """The repriced engine run must reflect the hidden factors, not
        the planner's own model."""
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model)
        ticket = service.submit("vlm", controlled_batch([4, 8]))
        service.step()
        result = ticket.result(1)
        reference = ReferenceCostModel(seed=7)
        trace = observed_execution(service, "vlm", result, reference)
        assert trace.meta.source == "engine"
        assert trace.total_ms > 0
        rel = abs(trace.total_ms - result.total_ms) / trace.total_ms
        assert rel > 0.01  # hidden truth visibly diverges pre-calibration
        assert not trace.validate()
        service.close()


class TestStatsHelpers:
    def test_percentile(self):
        assert percentile([], 50) == 0.0
        assert percentile([3.0], 99) == 3.0
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == pytest.approx(50.0, abs=1.0)
        assert percentile(values, 99) == pytest.approx(99.0, abs=1.0)

    def test_snapshot_shape(self, tiny_vlm, small_cluster, parallel2,
                            cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model)
        service.submit("vlm", controlled_batch([4, 8]))
        service.step()
        snap = service.stats.snapshot()
        for key in ("submitted", "completed", "coalesce_rate",
                    "plan_latency_p50_s", "plan_latency_p99_s",
                    "queue_wait_p50_s", "max_queue_depth"):
            assert key in snap
        assert snap["completed"] == 1
        assert "plans" in service.describe()
        service.close()


class FakeClock:
    """Deterministic stand-in for time.monotonic in aging tests."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestPriorityAging:
    def test_without_aging_high_priority_always_wins(
            self, tiny_vlm, small_cluster, parallel2, cost_model):
        clock = FakeClock()
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model,
                               clock=clock)
        low = service.submit("vlm", controlled_batch([4]), priority=5)
        clock.now = 1000.0  # ages arbitrarily long, still loses
        high = service.submit("vlm", controlled_batch([2, 2]), priority=0)
        service.step()
        assert high.done() and not low.done()
        service.step()
        assert low.done()
        service.close()

    def test_aged_low_priority_overtakes(self, tiny_vlm, small_cluster,
                                         parallel2, cost_model):
        """With aging_s=1, five queued seconds offset five priority
        levels: the old priority-5 request runs before a fresh
        priority-0 one — no starvation under a saturated queue."""
        clock = FakeClock()
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model,
                               aging_s=1.0, clock=clock)
        low = service.submit("vlm", controlled_batch([4]), priority=5)
        clock.now = 10.0  # virtual start 5.0 < 10.0
        high = service.submit("vlm", controlled_batch([2, 2]), priority=0)
        service.step()
        assert low.done() and not high.done()
        service.step()
        assert high.done()
        service.close()

    def test_fresh_high_priority_still_wins_under_aging(
            self, tiny_vlm, small_cluster, parallel2, cost_model):
        clock = FakeClock()
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model,
                               aging_s=10.0, clock=clock)
        low = service.submit("vlm", controlled_batch([4]), priority=5)
        clock.now = 2.0  # aged only 2s of the 50s needed to draw level
        high = service.submit("vlm", controlled_batch([2, 2]), priority=0)
        service.step()
        assert high.done() and not low.done()
        service.close()

    def test_invalid_aging_rejected(self):
        from repro.service import PlanService

        with pytest.raises(ValueError):
            PlanService(num_workers=0, aging_s=0.0)
        with pytest.raises(ValueError):
            PlanService(num_workers=0, aging_s=-1.0)


class TestMemoHitTelemetry:
    def test_memo_hits_counter_flows_to_stats(self, tiny_vlm, small_cluster,
                                              parallel2, cost_model):
        service = make_service(tiny_vlm, small_cluster, parallel2, cost_model)
        service.submit("vlm", controlled_batch([4, 8]))
        service.step()
        snap = service.stats.snapshot()
        assert "memo_hits" in snap
        assert snap["memo_hits"] >= 0
        service.close()


def scaled_trace(trace, factor):
    """A copy of ``trace`` whose span durations are scaled by ``factor``
    — a stand-in for systematically distorted (noisy) observations."""
    from dataclasses import replace as dc_replace

    from repro.trace.events import Trace

    spans = [dc_replace(span, start_ms=span.start_ms * factor,
                        end_ms=span.end_ms * factor)
             for span in trace.spans]
    return Trace(trace.meta, spans)


class TestRecalibrationHoldout:
    """Refits are validated on held-out observations and rolled back
    when they only look good on their own fit window."""

    def test_policy_validation(self):
        from repro.service import RecalibrationPolicy

        with pytest.raises(ValueError, match="holdout"):
            RecalibrationPolicy(holdout=-1)
        with pytest.raises(ValueError, match="holdout"):
            RecalibrationPolicy(window=4, holdout=4)
        assert RecalibrationPolicy(window=4, holdout=0).holdout == 0

    def test_split_window(self):
        from repro.service import JobRecalibrator, RecalibrationPolicy

        recal = JobRecalibrator(RecalibrationPolicy(window=8, holdout=2))
        fit, held = recal.split_window(["t0", "t1", "t2", "t3"])
        assert fit == ["t0", "t1"] and held == ["t2", "t3"]
        # Too few traces: nothing held out rather than nothing fitted.
        fit, held = recal.split_window(["t0"])
        assert fit == ["t0"] and held == []
        none_held = JobRecalibrator(RecalibrationPolicy(window=8, holdout=0))
        fit, held = none_held.split_window(["t0", "t1"])
        assert fit == ["t0", "t1"] and held == []

    def test_overfit_refit_is_rolled_back(self, tiny_vlm, small_cluster,
                                          parallel2, cost_model):
        """Fit window full of distorted (2x slower) observations, a
        genuine trace held out: the refit clears the fit-window bar but
        worsens held-out error — it must be rolled back, counted, and
        the planner left on its original model."""
        service = make_service(
            tiny_vlm, small_cluster, parallel2, cost_model, budget=6,
            recalibration=RecalibrationPolicy(interval=4, window=4,
                                              sweeps=1, holdout=1),
        )
        ticket = service.submit("vlm", controlled_batch([4, 8]))
        service.step()
        result = ticket.result(timeout=30)
        reference = ReferenceCostModel(seed=7)
        genuine = observed_execution(service, "vlm", result, reference)
        distorted = scaled_trace(genuine, 2.0)
        base_model = service.job("vlm").planner.cost_model
        for _ in range(3):
            assert service.observe("vlm", distorted) is None
        event = service.observe("vlm", genuine)  # 4th observation: refit
        assert event is not None
        assert event.report is not None
        assert event.report.improved  # the overfit *did* clear the bar...
        assert event.rolled_back  # ...and the holdout caught it
        assert not event.applied
        assert event.holdout_samples > 0
        assert event.holdout_error_after > event.holdout_error_before
        assert "ROLLED BACK" in event.describe()
        # Nothing was swapped, invalidated, or counted as applied.
        assert service.job("vlm").planner.cost_model is base_model
        assert service.stats.recal_rollbacks == 1
        assert service.stats.recalibrations == 0
        assert service.cache.stats.invalidations == 0
        assert service.stats.snapshot()["recal_rollbacks"] == 1
        service.close()

    def test_genuine_refit_applies_through_holdout(self, tiny_vlm,
                                                   small_cluster, parallel2,
                                                   cost_model):
        """Consistent observations: the holdout agrees with the fit
        window and the refit applies (records its holdout scores)."""
        service = make_service(
            tiny_vlm, small_cluster, parallel2, cost_model, budget=6,
            recalibration=RecalibrationPolicy(interval=4, window=4,
                                              sweeps=1, holdout=1),
        )
        ticket = service.submit("vlm", controlled_batch([4, 8]))
        service.step()
        result = ticket.result(timeout=30)
        reference = ReferenceCostModel(seed=7)
        genuine = observed_execution(service, "vlm", result, reference)
        for _ in range(3):
            service.observe("vlm", genuine)
        event = service.observe("vlm", genuine)
        assert event is not None and event.applied
        assert not event.rolled_back
        assert event.holdout_samples > 0
        assert event.holdout_error_after <= event.holdout_error_before
        assert service.stats.recal_rollbacks == 0
        assert service.stats.recalibrations == 1
        service.close()

    def test_holdout_zero_applies_overfit(self, tiny_vlm, small_cluster,
                                          parallel2, cost_model):
        """holdout=0 restores the old (unguarded) behaviour — the same
        distorted window that rolls back above now swaps the model."""
        service = make_service(
            tiny_vlm, small_cluster, parallel2, cost_model, budget=6,
            recalibration=RecalibrationPolicy(interval=4, window=4,
                                              sweeps=1, holdout=0),
        )
        ticket = service.submit("vlm", controlled_batch([4, 8]))
        service.step()
        result = ticket.result(timeout=30)
        reference = ReferenceCostModel(seed=7)
        genuine = observed_execution(service, "vlm", result, reference)
        distorted = scaled_trace(genuine, 2.0)
        base_model = service.job("vlm").planner.cost_model
        for _ in range(3):
            service.observe("vlm", distorted)
        event = service.observe("vlm", genuine)
        assert event is not None and event.applied
        assert not event.rolled_back
        assert service.job("vlm").planner.cost_model is not base_model
        service.close()
