"""Tests for iteration-graph signatures and the incremental plan cache."""

import threading

import pytest

from repro.core.graphbuilder import build_iteration_graph
from repro.core.plancache import (
    CachedPlan,
    PlanCache,
    decode_order,
    encode_plan,
)
from repro.core.planner import OnlinePlanner
from repro.core.schedule import validate_schedule
from repro.core.searcher import ScheduleSearcher
from repro.core.signature import (
    GraphSignature,
    compute_signature,
    context_fingerprint,
    feature_distance,
)
from repro.data.batching import GlobalBatch
from repro.data.packing import controlled_vlm_microbatch
from repro.data.workload import vlm_workload
from repro.sim.costmodel import CostModel


def controlled_batch(image_counts, start_index=0):
    return GlobalBatch([
        controlled_vlm_microbatch(index=start_index + i, num_images=count)
        for i, count in enumerate(image_counts)
    ])


@pytest.fixture
def build(vlm_setup, small_cluster, parallel2, cost_model):
    arch, plan, partitioner = vlm_setup

    def _build(batch):
        return build_iteration_graph(
            arch, plan, batch, small_cluster, parallel2, cost_model,
            partitioner=partitioner,
        )

    return _build


class TestGraphSignature:
    def test_deterministic(self, build, small_cluster, parallel2, cost_model):
        batch = controlled_batch([4, 8])
        a = compute_signature(build(batch), small_cluster, parallel2, cost_model)
        b = compute_signature(build(batch), small_cluster, parallel2, cost_model)
        assert a.digest == b.digest
        assert a.features == b.features

    def test_relabelled_batch_same_digest(self, build, small_cluster,
                                          parallel2, cost_model):
        """Microbatch index labels (iteration offsets) do not matter."""
        a = compute_signature(build(controlled_batch([4, 8], start_index=0)),
                              small_cluster, parallel2, cost_model)
        b = compute_signature(build(controlled_batch([4, 8], start_index=20)),
                              small_cluster, parallel2, cost_model)
        assert a.digest == b.digest

    def test_order_insensitive(self, build, small_cluster, parallel2,
                               cost_model):
        """Permuting the microbatches of a batch keeps the digest."""
        a = compute_signature(build(controlled_batch([4, 8, 2])),
                              small_cluster, parallel2, cost_model)
        b = compute_signature(build(controlled_batch([2, 4, 8])),
                              small_cluster, parallel2, cost_model)
        assert a.digest == b.digest

    def test_shape_changes_digest(self, build, small_cluster, parallel2,
                                  cost_model):
        a = compute_signature(build(controlled_batch([4, 8])),
                              small_cluster, parallel2, cost_model)
        b = compute_signature(build(controlled_batch([4, 9])),
                              small_cluster, parallel2, cost_model)
        assert a.digest != b.digest

    def test_context_changes_digest(self, build, small_cluster, parallel2,
                                    cost_model):
        batch = controlled_batch([4, 8])
        a = compute_signature(build(batch), small_cluster, parallel2,
                              cost_model)
        b = compute_signature(build(batch), small_cluster, parallel2,
                              cost_model.with_factors(compute_efficiency=0.5))
        c = compute_signature(build(batch), small_cluster, parallel2,
                              cost_model, extra=("mcts", 120))
        assert len({a.digest, b.digest, c.digest}) == 3
        assert a.context_digest != b.context_digest

    def test_uid_round_trip(self, build, small_cluster, parallel2, cost_model):
        graph = build(controlled_batch([4, 8, 2]))
        sig = compute_signature(graph, small_cluster, parallel2, cost_model)
        for stage in graph.stages:
            assert sig.actual_uid(sig.canonical_uid(stage.uid)) == stage.uid
        for pair in graph.pairs:
            assert sig.actual_pair(sig.canonical_pair(pair.pair_id)) == pair.pair_id

    def test_cross_batch_uid_translation(self, build, small_cluster,
                                         parallel2, cost_model):
        """Canonical uids line up across a microbatch permutation."""
        g1 = build(controlled_batch([4, 8]))
        g2 = build(controlled_batch([8, 4]))
        s1 = compute_signature(g1, small_cluster, parallel2, cost_model)
        s2 = compute_signature(g2, small_cluster, parallel2, cost_model)
        assert s1.digest == s2.digest
        for canonical in range(s1.num_stages):
            a = g1.stages[s1.actual_uid(canonical)]
            b = g2.stages[s2.actual_uid(canonical)]
            assert a.rank == b.rank
            assert a.key.module == b.key.module
            assert a.key.direction == b.key.direction
            assert g1.latency_ms(a) == pytest.approx(g2.latency_ms(b))

    def test_feature_distance(self):
        assert feature_distance((1.0, 2.0), (1.0, 2.0)) == 0.0
        assert feature_distance((1.0,), (2.0,)) == pytest.approx(0.5)
        assert feature_distance((1.0,), (1.0, 2.0)) == float("inf")

    def test_context_fingerprint_stable(self, small_cluster, parallel2,
                                        cost_model):
        a = context_fingerprint(small_cluster, parallel2, cost_model)
        b = context_fingerprint(small_cluster, parallel2, cost_model)
        assert a == b


class TestPlanCache:
    def _plan_for(self, digest_suffix, sig):
        # A token non-empty ordering: entries without one are excluded
        # from the near-miss tier (nothing to warm-start with).
        return CachedPlan(signature=sig, ordering=[(0, "m", "fw")],
                          order=[[]], selected=[], total_ms=1.0,
                          interleave_ms=1.0, evaluations=5)

    def test_exact_hit_and_stats(self, build, small_cluster, parallel2,
                                 cost_model):
        sig = compute_signature(build(controlled_batch([4])),
                                small_cluster, parallel2, cost_model)
        cache = PlanCache(capacity=4)
        assert cache.lookup(sig).kind == "miss"
        cache.store(self._plan_for("a", sig))
        found = cache.lookup(sig)
        assert found.kind == "hit"
        assert found.distance == 0.0
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self, build, small_cluster, parallel2, cost_model):
        cache = PlanCache(capacity=2, near_miss=False)
        sigs = [
            compute_signature(build(controlled_batch([n])), small_cluster,
                              parallel2, cost_model)
            for n in (2, 4, 8)
        ]
        for sig in sigs:
            cache.store(self._plan_for("x", sig))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert sigs[0].digest not in cache  # oldest evicted
        assert sigs[2].digest in cache

    def test_lru_recency_on_lookup(self, build, small_cluster, parallel2,
                                   cost_model):
        cache = PlanCache(capacity=2, near_miss=False)
        sigs = [
            compute_signature(build(controlled_batch([n])), small_cluster,
                              parallel2, cost_model)
            for n in (2, 4, 8)
        ]
        cache.store(self._plan_for("a", sigs[0]))
        cache.store(self._plan_for("b", sigs[1]))
        cache.lookup(sigs[0])  # refresh entry 0
        cache.store(self._plan_for("c", sigs[2]))
        assert sigs[0].digest in cache
        assert sigs[1].digest not in cache

    def test_near_miss_retrieval(self, build, small_cluster, parallel2,
                                 cost_model):
        cache = PlanCache(capacity=4, near_miss=True,
                          near_miss_max_distance=0.5)
        base = compute_signature(build(controlled_batch([8, 8])),
                                 small_cluster, parallel2, cost_model)
        near = compute_signature(build(controlled_batch([8, 9])),
                                 small_cluster, parallel2, cost_model)
        cache.store(self._plan_for("base", base))
        found = cache.lookup(near)
        assert found.kind == "near"
        assert found.entry.signature.digest == base.digest
        assert found.distance < 0.5
        assert cache.stats.near_hits == 1

    def test_near_miss_respects_context(self, build, small_cluster,
                                        parallel2, cost_model):
        cache = PlanCache(capacity=4, near_miss=True)
        base = compute_signature(build(controlled_batch([8, 8])),
                                 small_cluster, parallel2, cost_model,
                                 extra=("A",))
        other = compute_signature(build(controlled_batch([8, 9])),
                                  small_cluster, parallel2, cost_model,
                                  extra=("B",))
        cache.store(self._plan_for("base", base))
        assert cache.lookup(other).kind == "miss"

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestEncodeDecode:
    def test_round_trip_order(self, build, small_cluster, parallel2,
                              cost_model):
        graph = build(controlled_batch([4, 8]))
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=8, seed=0)
        result = searcher.search(graph)
        sig = compute_signature(graph, small_cluster, parallel2, cost_model)
        plan = encode_plan(result, sig, graph)
        assert decode_order(plan, sig) == result.schedule.order

    def test_replay_identical_schedule(self, build, small_cluster, parallel2,
                                       cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=10, seed=0)
        g1 = build(controlled_batch([4, 8], start_index=0))
        result = searcher.search(g1)
        sig1 = compute_signature(g1, small_cluster, parallel2, cost_model)
        cached = encode_plan(result, sig1, g1)

        g2 = build(controlled_batch([4, 8], start_index=2))
        sig2 = compute_signature(g2, small_cluster, parallel2, cost_model)
        assert sig1.digest == sig2.digest
        replayed = searcher.replay(g2, cached, sig2)
        assert replayed.cache_hit
        assert replayed.evaluations == 0
        assert replayed.schedule.order == result.schedule.order
        assert replayed.total_ms == pytest.approx(result.total_ms)
        assert validate_schedule(g2, replayed.schedule.order) == []
        assert [p.selected for p in g2.pairs] == [p.selected for p in g1.pairs]

    def test_replay_rejects_wrong_signature(self, build, small_cluster,
                                            parallel2, cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=5, seed=0)
        g1 = build(controlled_batch([4, 8]))
        result = searcher.search(g1)
        sig1 = compute_signature(g1, small_cluster, parallel2, cost_model)
        cached = encode_plan(result, sig1, g1)
        g2 = build(controlled_batch([4, 9]))
        sig2 = compute_signature(g2, small_cluster, parallel2, cost_model)
        with pytest.raises(ValueError, match="signatures"):
            searcher.replay(g2, cached, sig2)


class TestPlannerIntegration:
    @pytest.fixture
    def cached_planner(self, tiny_vlm, small_cluster, parallel2, cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=8, seed=0)
        return OnlinePlanner(tiny_vlm, small_cluster, parallel2, cost_model,
                             searcher=searcher, cache_size=8)

    def test_repeated_batch_hits(self, cached_planner):
        batch = controlled_batch([4, 8])
        first = cached_planner.plan_iteration(batch)
        second = cached_planner.plan_iteration(batch)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.evaluations == 0
        assert second.schedule.order == first.schedule.order
        assert cached_planner.cache_stats.hits == 1

    def test_near_batch_warm_starts(self, cached_planner):
        cached_planner.plan_iteration(controlled_batch([8, 8]))
        result = cached_planner.plan_iteration(controlled_batch([8, 9]))
        assert not result.cache_hit
        assert result.warm_started
        assert cached_planner.cache_stats.near_hits == 1

    def test_cache_disabled(self, tiny_vlm, small_cluster, parallel2,
                            cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=6, seed=0)
        planner = OnlinePlanner(tiny_vlm, small_cluster, parallel2,
                                cost_model, searcher=searcher,
                                enable_plan_cache=False)
        batch = controlled_batch([4, 8])
        first = planner.plan_iteration(batch)
        second = planner.plan_iteration(batch)
        assert planner.cache_stats is None
        assert not second.cache_hit
        assert second.signature is None
        assert first.evaluations > 0 and second.evaluations > 0

    def test_natural_strategy_never_counts_warm(self, tiny_vlm, small_cluster,
                                                parallel2, cost_model):
        """A searcher that cannot consume seeds reports misses, not near
        hits, so warm-rate telemetry stays honest."""
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    strategy="natural", seed=0)
        planner = OnlinePlanner(tiny_vlm, small_cluster, parallel2,
                                cost_model, searcher=searcher)
        planner.plan_iteration(controlled_batch([8, 8]))
        result = planner.plan_iteration(controlled_batch([8, 9]))
        assert not result.warm_started
        stats = planner.cache_stats
        assert stats.near_hits == 0
        assert stats.misses == 2

    def test_disable_wins_over_explicit_cache(self, tiny_vlm, small_cluster,
                                              parallel2, cost_model):
        """enable_plan_cache=False must override a passed-in cache."""
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=6, seed=0)
        shared = PlanCache()
        planner = OnlinePlanner(tiny_vlm, small_cluster, parallel2,
                                cost_model, searcher=searcher,
                                plan_cache=shared, enable_plan_cache=False)
        assert planner.cache is None
        batch = controlled_batch([4, 8])
        planner.plan_iteration(batch)
        result = planner.plan_iteration(batch)
        assert not result.cache_hit
        assert shared.stats.lookups == 0

    def test_replay_prepared_round_trip(self, cached_planner):
        """The split prepare/replay API the planning service fans out
        with: None before anything is cached, an exact-hit replay after."""
        prep = cached_planner.prepare(controlled_batch([4, 8]))
        assert cached_planner.replay_prepared(prep) is None
        cold = cached_planner.plan_prepared(prep)
        prep2 = cached_planner.prepare(controlled_batch([4, 8],
                                                        start_index=7))
        replayed = cached_planner.replay_prepared(prep2)
        assert replayed is not None
        assert replayed.cache_hit
        assert replayed.evaluations == 0
        assert replayed.total_ms == pytest.approx(cold.total_ms)

    def test_replay_prepared_without_cache_is_none(self, tiny_vlm,
                                                   small_cluster, parallel2,
                                                   cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=4, seed=0)
        planner = OnlinePlanner(tiny_vlm, small_cluster, parallel2,
                                cost_model, searcher=searcher,
                                enable_plan_cache=False)
        prep = planner.prepare(controlled_batch([4, 8]))
        assert prep.signature is None
        assert planner.replay_prepared(prep) is None

    def test_run_reports_cache_fields(self, cached_planner):
        batches = [controlled_batch([4, 8]), controlled_batch([4, 8])]
        reports = cached_planner.run(batches, asynchronous=False)
        assert not reports[0].cache_hit
        assert reports[1].cache_hit
        assert reports[0].signature == reports[1].signature
        assert reports[0].signature is not None

    def test_workload_stream_hit_rate(self, cached_planner):
        """Repeated stream batches are near misses or hits, never all cold."""
        stream_batches = vlm_workload(2, seed=0).batches(4)
        cached_planner.run(stream_batches, asynchronous=False)
        stats = cached_planner.cache_stats
        assert stats.lookups == 4
        assert stats.warm_rate > 0.0


class TestPersistence:
    """PlanCache.save / PlanCache.load (JSON) across planner restarts."""

    def _populate(self, tiny_vlm, small_cluster, parallel2, cost_model,
                  shared=None):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=8, seed=0)
        return OnlinePlanner(tiny_vlm, small_cluster, parallel2, cost_model,
                             searcher=searcher, plan_cache=shared,
                             cache_size=8)

    def test_round_trip_replays_exactly(self, tiny_vlm, small_cluster,
                                        parallel2, cost_model, tmp_path):
        path = str(tmp_path / "cache.json")
        planner = self._populate(tiny_vlm, small_cluster, parallel2,
                                 cost_model)
        batch = controlled_batch([4, 8])
        cold = planner.plan_iteration(batch)
        planner.cache.save(path)

        restarted = self._populate(tiny_vlm, small_cluster, parallel2,
                                   cost_model, shared=PlanCache.load(path))
        hit = restarted.plan_iteration(batch)
        assert hit.cache_hit
        assert hit.evaluations == 0
        assert hit.schedule.order == cold.schedule.order
        assert hit.total_ms == pytest.approx(cold.total_ms, rel=1e-12)
        assert restarted.cache_stats.hits == 1

    def test_loaded_cache_serves_near_misses(self, tiny_vlm, small_cluster,
                                             parallel2, cost_model,
                                             tmp_path):
        path = str(tmp_path / "cache.json")
        planner = self._populate(tiny_vlm, small_cluster, parallel2,
                                 cost_model)
        planner.plan_iteration(controlled_batch([8, 8]))
        planner.cache.save(path)
        restarted = self._populate(tiny_vlm, small_cluster, parallel2,
                                   cost_model, shared=PlanCache.load(path))
        result = restarted.plan_iteration(controlled_batch([8, 9]))
        assert result.warm_started

    def test_payload_round_trip_preserves_entries(self, tiny_vlm,
                                                  small_cluster, parallel2,
                                                  cost_model):
        planner = self._populate(tiny_vlm, small_cluster, parallel2,
                                 cost_model)
        planner.plan_iteration(controlled_batch([4, 8]))
        planner.plan_iteration(controlled_batch([2, 2]))
        payload = planner.cache.to_payload()
        clone = PlanCache.from_payload(payload)
        assert len(clone) == len(planner.cache)
        for digest, entry in planner.cache._entries.items():
            other = clone._entries[digest]
            assert other.order == entry.order
            assert other.selected == entry.selected
            assert other.ordering == entry.ordering
            assert other.signature.features == entry.signature.features

    def test_load_missing_or_corrupt_file_is_empty(self, tmp_path):
        missing = PlanCache.load(str(tmp_path / "nope.json"))
        assert len(missing) == 0
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert len(PlanCache.load(str(bad))) == 0

    def test_stale_versions_are_dropped(self, tiny_vlm, small_cluster,
                                        parallel2, cost_model):
        planner = self._populate(tiny_vlm, small_cluster, parallel2,
                                 cost_model)
        planner.plan_iteration(controlled_batch([4, 8]))
        payload = planner.cache.to_payload()
        payload["signature_version"] = -1
        assert len(PlanCache.from_payload(payload)) == 0

    def test_capacity_override_truncates_to_mru(self, tiny_vlm,
                                                small_cluster, parallel2,
                                                cost_model):
        planner = self._populate(tiny_vlm, small_cluster, parallel2,
                                 cost_model)
        planner.plan_iteration(controlled_batch([4, 8]))
        planner.plan_iteration(controlled_batch([2, 2]))
        payload = planner.cache.to_payload()
        small = PlanCache.from_payload(payload, capacity=1)
        assert len(small) == 1
        # The most recently used entry survives.
        kept = next(iter(small._entries))
        assert kept == list(planner.cache._entries)[-1]



    def test_structurally_corrupt_payload_never_fatal(self, tiny_vlm,
                                                      small_cluster,
                                                      parallel2, cost_model,
                                                      tmp_path):
        """Valid JSON with malformed entries must degrade, not crash."""
        import json as _json

        planner = self._populate(tiny_vlm, small_cluster, parallel2,
                                 cost_model)
        planner.plan_iteration(controlled_batch([4, 8]))
        payload = planner.cache.to_payload()
        payload["entries"].insert(0, {"signature": {"digest": "x"}})
        loaded = PlanCache.from_payload(payload)
        assert len(loaded) == 1  # bad entry dropped, good one kept

        path = tmp_path / "weird.json"
        path.write_text(_json.dumps(["not", "an", "object"]))
        assert len(PlanCache.load(str(path))) == 0
        path.write_text(_json.dumps({"format": "repro-plan-cache",
                                     "version": 1,
                                     "signature_version": 1,
                                     "capacity": "huh",
                                     "entries": "nope"}))
        assert len(PlanCache.load(str(path))) == 0


class TestInvalidation:
    """invalidate_context: the online-recalibration eviction path."""

    def _plan_for(self, sig):
        return CachedPlan(signature=sig, ordering=[(0, "m", "fw")],
                          order=[[]], selected=[], total_ms=1.0,
                          interleave_ms=1.0, evaluations=5)

    def test_drops_only_matching_context(self, build, small_cluster,
                                         parallel2, cost_model):
        cache = PlanCache(capacity=8)
        old = compute_signature(build(controlled_batch([4])), small_cluster,
                                parallel2, cost_model, extra=("old",))
        new = compute_signature(build(controlled_batch([8])), small_cluster,
                                parallel2, cost_model, extra=("new",))
        cache.store(self._plan_for(old))
        cache.store(self._plan_for(new))
        removed = cache.invalidate_context(old.context_digest)
        assert removed == 1
        assert cache.stats.invalidations == 1
        assert old.digest not in cache
        assert new.digest in cache
        assert "invalidated" in cache.stats.describe()

    def test_unknown_context_is_noop(self, build, small_cluster, parallel2,
                                     cost_model):
        cache = PlanCache(capacity=8)
        sig = compute_signature(build(controlled_batch([4])), small_cluster,
                                parallel2, cost_model)
        cache.store(self._plan_for(sig))
        assert cache.invalidate_context("nope") == 0
        assert len(cache) == 1
        assert "invalidated" not in cache.stats.describe()


class TestConcurrency:
    """Many threads hammering one cache: interleaved lookup / store /
    save / load / invalidate must neither crash nor corrupt telemetry."""

    THREADS = 6
    OPS = 40

    @pytest.fixture
    def signatures(self, build, small_cluster, parallel2, cost_model):
        """Distinct digests across two planning contexts (A and B)."""
        sigs = {"A": [], "B": []}
        for context in ("A", "B"):
            for count in (1, 2, 4, 8):
                sigs[context].append(compute_signature(
                    build(controlled_batch([count])), small_cluster,
                    parallel2, cost_model, extra=(context,),
                ))
        return sigs

    @staticmethod
    def _plan_for(sig):
        return CachedPlan(signature=sig, ordering=[(0, "m", "fw")],
                          order=[[]], selected=[], total_ms=1.0,
                          interleave_ms=1.0, evaluations=1)

    def test_interleaved_ops_keep_stats_consistent(self, signatures,
                                                   tmp_path):
        cache = PlanCache(capacity=4, near_miss=True)
        shared_path = str(tmp_path / "shared.json")
        cache.save(shared_path)  # so early loads always find a file
        barrier = threading.Barrier(self.THREADS)
        counts = [dict(lookups=0, stores=0, invalidated=0)
                  for _ in range(self.THREADS)]
        failures = []

        def worker(tid):
            my = counts[tid]
            my_path = str(tmp_path / f"t{tid}.json")
            pool = signatures["A"] + signatures["B"]
            try:
                barrier.wait(timeout=30)
                for op in range(self.OPS):
                    sig = pool[(tid + op) % len(pool)]
                    if op % 10 == 3:
                        # Interleaved persistence: private path round-trips
                        # exactly; the shared path races by design and
                        # load() must absorb whatever it finds.
                        cache.save(my_path)
                        clone = PlanCache.load(my_path)
                        assert len(clone) <= cache.capacity
                        cache.save(shared_path)
                        PlanCache.load(shared_path)
                    elif op % 10 == 7:
                        my["invalidated"] += cache.invalidate_context(
                            signatures["B"][0].context_digest
                        )
                    elif op % 3 == 0:
                        cache.store(self._plan_for(sig))
                        my["stores"] += 1
                    else:
                        cache.lookup(sig)
                        my["lookups"] += 1
            except Exception as exc:  # noqa: BLE001 — surface in main thread
                failures.append((tid, repr(exc)))

        threads = [threading.Thread(target=worker, args=(tid,))
                   for tid in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not failures, failures

        stats = cache.stats
        total_lookups = sum(c["lookups"] for c in counts)
        total_stores = sum(c["stores"] for c in counts)
        total_invalidated = sum(c["invalidated"] for c in counts)
        assert stats.lookups == total_lookups
        assert stats.hits + stats.near_hits + stats.misses == total_lookups
        assert stats.stores == total_stores
        assert stats.invalidations == total_invalidated
        assert len(cache) <= cache.capacity
        assert stats.evictions <= stats.stores
        # Every surviving entry is retrievable and self-consistent.
        for digest, plan in list(cache._entries.items()):
            assert plan.signature.digest == digest
        # A final invalidation sweep leaves no context-B entries behind.
        cache.invalidate_context(signatures["B"][0].context_digest)
        b_context = signatures["B"][0].context_digest
        assert all(p.signature.context_digest != b_context
                   for p in cache._entries.values())

    def test_concurrent_planner_lookups_share_cache(self, build,
                                                    small_cluster, parallel2,
                                                    cost_model, vlm_setup):
        """Replica-style concurrency: threads planning the same batch
        through one shared cache serve at most one cold search."""
        from repro.core.planner import OnlinePlanner

        arch, _plan, _partitioner = vlm_setup
        shared = PlanCache(capacity=8)
        planners = [
            OnlinePlanner(
                arch, small_cluster, parallel2, cost_model,
                searcher=ScheduleSearcher(small_cluster, parallel2,
                                          cost_model, budget_evaluations=4,
                                          seed=0),
                plan_cache=shared,
            )
            for _ in range(4)
        ]
        batch = controlled_batch([4, 8])
        results = [None] * len(planners)

        def plan(i):
            results[i] = planners[i].plan_iteration(batch)

        threads = [threading.Thread(target=plan, args=(i,))
                   for i in range(len(planners))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert all(r is not None for r in results)
        totals = {round(r.total_ms, 9) for r in results}
        assert len(totals) == 1  # every replica got the same makespan
        # Threads race between lookup and store, so more than one may
        # search cold — but stats must balance and later hits replay.
        stats = shared.stats
        assert stats.lookups == 4
        assert stats.hits + stats.near_hits + stats.misses == 4


class TestWarmBudget:
    """Cache-aware budget control: close near misses search with a
    shrunken evaluation budget (ROADMAP: half suffices at ~0.03)."""

    def _planner(self, tiny_vlm, small_cluster, parallel2, cost_model,
                 **kwargs):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=8, seed=0)
        return OnlinePlanner(tiny_vlm, small_cluster, parallel2, cost_model,
                             searcher=searcher, cache_size=8, **kwargs)

    def test_close_near_miss_shrinks_budget(self, tiny_vlm, small_cluster,
                                            parallel2, cost_model):
        planner = self._planner(tiny_vlm, small_cluster, parallel2,
                                cost_model, warm_budget_fraction=0.5,
                                warm_budget_distance=0.5)
        cold = planner.plan_iteration(controlled_batch([8, 8]))
        warm = planner.plan_iteration(controlled_batch([8, 9]))
        assert cold.evaluations == 8
        assert warm.warm_started
        assert warm.evaluations <= 4

    def test_distant_near_miss_keeps_full_budget(self, tiny_vlm,
                                                 small_cluster, parallel2,
                                                 cost_model):
        planner = self._planner(tiny_vlm, small_cluster, parallel2,
                                cost_model, warm_budget_fraction=0.5,
                                warm_budget_distance=1e-9)
        planner.plan_iteration(controlled_batch([8, 8]))
        warm = planner.plan_iteration(controlled_batch([8, 9]))
        assert warm.warm_started
        assert warm.evaluations == 8

    def test_fraction_one_disables_shrink(self, tiny_vlm, small_cluster,
                                          parallel2, cost_model):
        planner = self._planner(tiny_vlm, small_cluster, parallel2,
                                cost_model, warm_budget_fraction=1.0,
                                warm_budget_distance=0.5)
        planner.plan_iteration(controlled_batch([8, 8]))
        warm = planner.plan_iteration(controlled_batch([8, 9]))
        assert warm.warm_started
        assert warm.evaluations == 8

    def test_invalid_fraction_rejected(self, tiny_vlm, small_cluster,
                                       parallel2, cost_model):
        with pytest.raises(ValueError):
            self._planner(tiny_vlm, small_cluster, parallel2, cost_model,
                          warm_budget_fraction=0.0)

    def test_searcher_budget_override(self, tiny_vlm, small_cluster,
                                      parallel2, cost_model, vlm_setup):
        arch, plan, partitioner = vlm_setup
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=8, seed=0)
        batch = vlm_workload(2, seed=1).next_batch()
        graph = build_iteration_graph(arch, plan, batch, small_cluster,
                                      parallel2, cost_model,
                                      partitioner=partitioner)
        result = searcher.search(graph, budget_evaluations=3)
        assert result.evaluations <= 3


class TestAtomicSave:
    """PlanCache.save must be crash-safe: a kill mid-dump leaves either
    the old or the new complete file on disk, never a truncated one."""

    def _populate(self, tiny_vlm, small_cluster, parallel2, cost_model,
                  shared=None):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=8, seed=0)
        return OnlinePlanner(tiny_vlm, small_cluster, parallel2, cost_model,
                             searcher=searcher, plan_cache=shared,
                             cache_size=8)

    def test_crash_mid_dump_preserves_previous_file(
            self, tiny_vlm, small_cluster, parallel2, cost_model, tmp_path,
            monkeypatch):
        """Simulated kill: json.dump writes half the payload then dies.
        The previously saved complete cache must survive untouched."""
        import json as _json

        import repro.core.plancache as plancache_mod

        path = str(tmp_path / "cache.json")
        planner = self._populate(tiny_vlm, small_cluster, parallel2,
                                 cost_model)
        planner.plan_iteration(controlled_batch([4, 8]))
        planner.cache.save(path)
        good = open(path).read()

        planner.plan_iteration(controlled_batch([2, 6]))

        def dying_dump(payload, f, **kwargs):
            f.write(_json.dumps(payload)[:40])  # truncated write...
            raise OSError("killed mid-dump")  # ...then the crash

        monkeypatch.setattr(plancache_mod.json, "dump", dying_dump)
        with pytest.raises(OSError, match="killed"):
            planner.cache.save(path)
        # Old complete file intact, byte for byte; no temp litter.
        assert open(path).read() == good
        assert [p.name for p in tmp_path.iterdir()] == ["cache.json"]
        restored = PlanCache.load(path)
        assert len(restored) == 1

    def test_crash_on_first_save_leaves_no_file(
            self, tiny_vlm, small_cluster, parallel2, cost_model, tmp_path,
            monkeypatch):
        import repro.core.plancache as plancache_mod

        path = str(tmp_path / "fresh.json")
        planner = self._populate(tiny_vlm, small_cluster, parallel2,
                                 cost_model)
        planner.plan_iteration(controlled_batch([4, 8]))

        def dying_dump(payload, f, **kwargs):
            raise OSError("killed mid-dump")

        monkeypatch.setattr(plancache_mod.json, "dump", dying_dump)
        with pytest.raises(OSError):
            planner.cache.save(path)
        assert not list(tmp_path.iterdir())  # no partial file, no temp
        assert len(PlanCache.load(path)) == 0  # restart sees empty cache

    def test_sigkill_mid_save_never_truncates(self, tmp_path):
        """The literal kill test: a subprocess saves a large cache in a
        loop and is SIGKILLed mid-write; the file must still parse as a
        complete cache with every entry."""
        import json as _json
        import os
        import signal
        import subprocess
        import sys
        import time as _time

        path = str(tmp_path / "killed.json")
        script = f"""
import sys
sys.path.insert(0, {repr(os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))})
from repro.core.plancache import CachedPlan, PlanCache
from repro.core.signature import BlockInfo, GraphSignature

cache = PlanCache(capacity=512)
for i in range(300):
    sig = GraphSignature(
        digest=f"digest-{{i}}", context_digest="ctx",
        features=(float(i),) * 4,
        blocks=[BlockInfo(0, 0, 4, 0, 2, f"block-{{i}}")], num_ranks=2,
    )
    cache.store(CachedPlan(
        signature=sig, ordering=[(0, "mod", "fw")] * 8,
        order=[[0, 1, 2, 3], [0, 1, 2, 3]], selected=[0, 1],
        total_ms=1.5, interleave_ms=1.0, evaluations=9, label="kill-test",
    ))
cache.save({repr(path)})
print("SAVED", flush=True)
while True:
    cache.save({repr(path)})
"""
        proc = subprocess.Popen([sys.executable, "-c", script],
                                stdout=subprocess.PIPE, text=True)
        try:
            assert proc.stdout.readline().strip() == "SAVED"
            _time.sleep(0.05)  # land somewhere inside a later save
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        # Whatever instant the kill hit, the file is a complete cache.
        with open(path) as f:
            payload = _json.load(f)  # would raise on a truncated file
        assert len(payload["entries"]) == 300
        assert len(PlanCache.load(path)) == 300
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name != "killed.json"]
        # At most one orphaned temp file (the one mid-write at kill
        # time); the real path is never the truncated one.
        assert len(leftovers) <= 1
