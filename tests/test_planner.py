"""Tests for the asynchronous online planner (section 3.2)."""

import pytest

from repro.core.planner import OnlinePlanner, reference_microbatch
from repro.core.searcher import ScheduleSearcher
from repro.data import constants
from repro.data.workload import vlm_workload


@pytest.fixture
def planner(tiny_vlm, small_cluster, parallel2, cost_model):
    searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                budget_evaluations=8, seed=0)
    return OnlinePlanner(tiny_vlm, small_cluster, parallel2, cost_model,
                         searcher=searcher)


class TestReferenceMicrobatch:
    def test_vlm_reference_full_capacity(self):
        mb = reference_microbatch("vlm")
        assert mb.num_images == constants.MAX_IMAGES_PER_MICROBATCH

    def test_t2v_reference(self):
        mb = reference_microbatch("t2v")
        assert mb.num_clips == constants.MAX_CLIPS_PER_MICROBATCH
        assert mb.video_seconds == constants.MAX_VIDEO_SECONDS

    def test_lm_reference(self):
        mb = reference_microbatch("lm")
        assert mb.kind == "lm"


class TestOnlinePlanner:
    def test_synchronous_run(self, planner):
        batches = vlm_workload(2, seed=0).batches(3)
        reports = planner.run(batches, asynchronous=False)
        assert len(reports) == 3
        for report in reports:
            assert report.train_ms > 0
            assert report.search_seconds > 0

    def test_asynchronous_run(self, planner):
        batches = vlm_workload(2, seed=0).batches(3)
        reports = planner.run(batches, asynchronous=True)
        assert len(reports) == 3
        assert reports[0].stall_seconds == 0.0  # first search is priming

    def test_empty_batches(self, planner):
        assert planner.run([]) == []

    def test_schedule_adapts_to_batch(self, planner):
        """Different batches get genuinely different schedules."""
        batches = vlm_workload(2, seed=0).batches(2)
        reports = planner.run(batches, asynchronous=False)
        orders = [r.search.schedule.order for r in reports]
        assert orders[0] != orders[1]

    def test_deploy_engine_agrees_with_simulation(self, tiny_vlm, small_cluster,
                                                  parallel2, cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=5, seed=0)
        planner = OnlinePlanner(tiny_vlm, small_cluster, parallel2, cost_model,
                                searcher=searcher, deploy=True)
        batches = vlm_workload(2, seed=1).batches(1)
        report = planner.run(batches, asynchronous=False)[0]
        assert report.engine is not None
        # The runtime replay must land on the planner's predicted time.
        assert report.engine.total_ms == pytest.approx(report.train_ms, rel=1e-6)

    def test_average_images_recorded(self, planner):
        batches = vlm_workload(2, seed=0).batches(1)
        report = planner.run(batches, asynchronous=False)[0]
        assert report.average_images == batches[0].average_images


class TestQuickPlan:
    def test_quick_plan_smoke(self):
        from repro import quick_plan

        reports = quick_plan("VLM-S", num_microbatches=2, iterations=1,
                             budget_evaluations=4)
        assert len(reports) == 1
        assert reports[0].train_ms > 0
