"""Property-based tests over randomly generated iteration graphs.

Fuzzes the central pipeline: random multimodal batches -> graph ->
interleave -> validate -> simulate -> compile -> replay, asserting the
invariants that must hold for *any* input.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.devices import GPU_H800_80G
from repro.cluster.topology import ClusterSpec, ParallelConfig
from repro.core.graphbuilder import build_iteration_graph
from repro.core.interleaver import interleave_stages
from repro.core.memopt import generate_candidates, optimize_memory
from repro.core.partitioner import ModalityPartitioner
from repro.core.planner import reference_microbatch
from repro.core.schedule import validate_schedule
from repro.data.batching import GlobalBatch
from repro.data.packing import controlled_vlm_microbatch
from repro.models.lmm import build_vlm
from repro.runtime.compiler import compile_schedule
from repro.runtime.engine import execute_plan
from repro.sim.costmodel import CostModel
from repro.sim.pipeline import simulate_pipeline
from tests.conftest import TINY_LM, TINY_VIT

_CLUSTER = ClusterSpec(gpu=GPU_H800_80G, gpus_per_node=4)
_CM = CostModel()
_ARCH = build_vlm(TINY_VIT, TINY_LM)
_CACHE = {}


def _setup(pp):
    if pp not in _CACHE:
        parallel = ParallelConfig(dp=1, tp=1, pp=pp)
        partitioner = ModalityPartitioner(_ARCH, _CLUSTER, parallel, _CM)
        plan = partitioner.plan(reference_microbatch("vlm"))
        _CACHE[pp] = (parallel, partitioner, plan)
    return _CACHE[pp]


@st.composite
def image_batches(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    counts = draw(st.lists(st.integers(0, 48), min_size=n, max_size=n))
    return GlobalBatch([
        controlled_vlm_microbatch(i, c) for i, c in enumerate(counts)
    ])


@settings(max_examples=25, deadline=None)
@given(batch=image_batches(), pp=st.sampled_from([2, 4]))
def test_property_interleave_always_valid(batch, pp):
    """Any random batch yields a dependency- and coverage-valid order."""
    parallel, partitioner, plan = _setup(pp)
    graph = build_iteration_graph(_ARCH, plan, batch, _CLUSTER, parallel, _CM,
                                  partitioner=partitioner)
    result = interleave_stages(graph, _CLUSTER, parallel, _CM)
    assert validate_schedule(graph, result.order) == []


@settings(max_examples=15, deadline=None)
@given(batch=image_batches())
def test_property_interleaver_agrees_with_simulator(batch):
    parallel, partitioner, plan = _setup(2)
    graph = build_iteration_graph(_ARCH, plan, batch, _CLUSTER, parallel, _CM,
                                  partitioner=partitioner)
    result = interleave_stages(graph, _CLUSTER, parallel, _CM)
    sim = simulate_pipeline(graph, result.order, _CLUSTER, parallel, _CM)
    assert sim.total_ms == pytest.approx(result.total_ms)


@settings(max_examples=15, deadline=None)
@given(batch=image_batches())
def test_property_makespan_at_least_critical_path(batch):
    """Makespan can never beat the busiest rank's total compute."""
    parallel, partitioner, plan = _setup(2)
    graph = build_iteration_graph(_ARCH, plan, batch, _CLUSTER, parallel, _CM,
                                  partitioner=partitioner)
    result = interleave_stages(graph, _CLUSTER, parallel, _CM)
    busiest = max(graph.total_compute_ms_per_rank())
    assert result.total_ms >= busiest - 1e-6


@settings(max_examples=10, deadline=None)
@given(batch=image_batches())
def test_property_memopt_never_slows_schedule(batch):
    parallel, partitioner, plan = _setup(2)
    graph = build_iteration_graph(_ARCH, plan, batch, _CLUSTER, parallel, _CM,
                                  partitioner=partitioner)
    generate_candidates(graph)
    graph.select_most_memory_efficient()
    inter = interleave_stages(graph, _CLUSTER, parallel, _CM)
    before = simulate_pipeline(graph, inter.order, _CLUSTER, parallel, _CM)
    optimize_memory(graph, inter.start_ms, inter.end_ms, exact=False)
    after = simulate_pipeline(graph, inter.order, _CLUSTER, parallel, _CM)
    assert after.total_ms <= before.total_ms + 1e-6
    assert after.memory_exceeded == []


@settings(max_examples=10, deadline=None)
@given(batch=image_batches())
def test_property_compiled_plan_replays_exactly(batch):
    """Compilation and replay must reproduce the simulated timeline."""
    parallel, partitioner, plan = _setup(2)
    graph = build_iteration_graph(_ARCH, plan, batch, _CLUSTER, parallel, _CM,
                                  partitioner=partitioner)
    inter = interleave_stages(graph, _CLUSTER, parallel, _CM)
    sim = simulate_pipeline(graph, inter.order, _CLUSTER, parallel, _CM)
    exec_plan = compile_schedule(graph, inter.order, _CLUSTER, parallel, _CM)
    engine = execute_plan(exec_plan)
    assert engine.total_ms == pytest.approx(sim.total_ms, rel=1e-9)


@settings(max_examples=10, deadline=None)
@given(
    batch=image_batches(),
    scale=st.floats(min_value=1.1, max_value=3.0),
)
def test_property_uniform_slowdown_scales_makespan(batch, scale):
    """Scaling every stage latency by k scales the makespan by >= ~k
    (communication terms keep it from being exactly linear)."""
    parallel, partitioner, plan = _setup(2)
    graph = build_iteration_graph(_ARCH, plan, batch, _CLUSTER, parallel, _CM,
                                  partitioner=partitioner)
    inter = interleave_stages(graph, _CLUSTER, parallel, _CM)
    base = simulate_pipeline(graph, inter.order, _CLUSTER, parallel, _CM)
    slowed = simulate_pipeline(
        graph, inter.order, _CLUSTER, parallel, _CM,
        jitter=lambda uid, ms: ms * scale,
    )
    assert slowed.total_ms >= base.total_ms
    assert slowed.total_ms <= base.total_ms * scale + 1e-6
