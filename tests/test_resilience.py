"""Fleet resilience: retry policy, circuit breakers, deadline
propagation, degraded-mode local planning, launcher accounting.

* **Retry policy** — transport errors are retryable, deterministic
  planning failures never are; backoff is seeded decorrelated jitter
  bounded by base/cap and a wall-clock budget.
* **Circuit breakers** — closed → open → half-open with a single
  probe, lazy recovery on an injectable clock, and a transition audit
  trail.
* **Deadlines** — a spent budget raises the typed
  :class:`DeadlineExceededError` client-side before send, is shed
  server-side before dispatch and worker-side before search, and the
  shed count reaches both the stats RPC and the metrics registry.
* **Degraded mode** — when every shard in a signature's preference
  list is down or breaker-open, the client plans locally: flagged
  ``degraded``, routed to the ``"local"`` sentinel, makespan
  bit-identical to a healthy plan.
* **Launcher** — one crash is charged exactly once to the restart
  budget; ``stop()`` is idempotent and safe to race.
* **Wire safety** — a stale response id on a reused connection is
  rejected as a protocol error, never mis-delivered.
"""

import json
import os
import socket
import threading
import time
import warnings

import pytest

from repro.core.plancache import PlanCache
from repro.core.planner import OnlinePlanner
from repro.core.searcher import ScheduleSearcher
from repro.data.batching import GlobalBatch
from repro.data.packing import controlled_vlm_microbatch
from repro.fleet import (
    CircuitBreaker,
    FleetClient,
    FleetConfig,
    FleetFailoverWarning,
    PlanFleet,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    WarningAggregator,
)
from repro.obs.registry import sample_value
from repro.obs.scrape import check_scrape
from repro.service import (
    DeadlineExceededError,
    PlanService,
    PlanServiceClient,
    PlanServiceServer,
    ProtocolError,
    RemotePlanError,
    RetryPolicy,
    ServiceClosedError,
    SignatureMismatchError,
    retryable,
)
from repro.service.rpc import (
    WIRE_FORMAT,
    WIRE_VERSION,
    parse_address,
    recv_frame,
    request_envelope,
    send_frame,
)


def controlled_batch(image_counts, start_index=0):
    return GlobalBatch([
        controlled_vlm_microbatch(index=start_index + i, num_images=count)
        for i, count in enumerate(image_counts)
    ])


@pytest.fixture
def make_planner(tiny_vlm, small_cluster, parallel2, cost_model):
    def factory(budget=8, cache_size=8):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=budget, seed=0)
        cache = PlanCache(capacity=cache_size)
        return OnlinePlanner(tiny_vlm, small_cluster, parallel2, cost_model,
                             searcher=searcher, plan_cache=cache)
    return factory


@pytest.fixture
def serving(tmp_path, make_planner):
    """A served PlanService on a Unix socket; yields a start()."""
    def start(num_workers=1, jobs=("vlm",), **server_kwargs):
        service = PlanService(num_workers=num_workers)
        for job in jobs:
            service.register_job(job, planner=make_planner())
        server = PlanServiceServer(
            service, uds=str(tmp_path / "plan.sock"),
            result_timeout_s=60.0, **server_kwargs,
        )
        started.append((service, server))
        return service, server

    started = []
    yield start
    for service, server in started:
        server.close(timeout=10.0)
        service.close()


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestRetryClassification:
    RETRYABLE = (
        OSError("refused"),
        TimeoutError("slow"),
        ProtocolError("bad frame"),
        ServiceClosedError("draining"),
    )
    TERMINAL = (
        RemotePlanError("search failed"),
        SignatureMismatchError("context drift"),
        DeadlineExceededError("budget spent"),
        ValueError("not a transport error"),
    )

    def test_transport_errors_are_retryable(self):
        for error in self.RETRYABLE:
            assert retryable(error), error

    def test_deterministic_errors_are_terminal(self):
        # DeadlineExceededError IS a RemotePlanError — classification
        # must check the deterministic branch first.
        for error in self.TERMINAL:
            assert not retryable(error), error

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_s=1.0, cap_s=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestRetrySession:
    def test_backoff_is_seeded_and_bounded(self):
        policy = RetryPolicy(max_attempts=8, base_s=0.01, cap_s=0.2,
                             seed=42)
        a = [policy.session().next_delay_s() for _ in range(1)]
        one = policy.session()
        two = policy.session()
        seq_one = [one.next_delay_s() for _ in range(6)]
        seq_two = [two.next_delay_s() for _ in range(6)]
        assert seq_one == seq_two  # same seed, same jitter stream
        assert a[0] == seq_one[0]
        for delay in seq_one:
            assert policy.base_s <= delay <= policy.cap_s

    def test_attempt_exhaustion(self):
        session = RetryPolicy(max_attempts=2).session()
        assert session.start_attempt() == 1
        assert not session.give_up(OSError("x"))
        assert session.start_attempt() == 2
        assert session.give_up(OSError("x"))

    def test_non_retryable_error_gives_up_immediately(self):
        session = RetryPolicy(max_attempts=10).session()
        session.start_attempt()
        assert session.give_up(RemotePlanError("terminal"))

    def test_budget_clamps_and_exhausts(self):
        policy = RetryPolicy(max_attempts=100, base_s=0.4, cap_s=1.0,
                             budget_s=0.5, seed=0)
        session = policy.session()
        total = 0.0
        while not session.give_up(OSError("x")):
            session.start_attempt()
            total += session.next_delay_s()
        assert total <= policy.budget_s + 1e-9
        assert session.slept_s == total


class TestCircuitBreaker:
    def test_trips_after_threshold_and_refuses(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, recovery_s=5.0,
                                 clock=clock)
        assert breaker.state == STATE_CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()
        assert breaker.transitions == [(STATE_CLOSED, STATE_OPEN)]

    def test_half_open_admits_a_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=5.0,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == STATE_HALF_OPEN  # lazy recovery
        assert breaker.allow()        # the probe
        assert not breaker.allow()    # everyone else waits

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=1.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()
        assert (STATE_HALF_OPEN, STATE_CLOSED) in breaker.transitions

    def test_probe_failure_restarts_recovery(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=2.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        clock.advance(1.0)  # recovery window restarted, not resumed
        assert breaker.state == STATE_OPEN
        clock.advance(1.0)
        assert breaker.state == STATE_HALF_OPEN

    def test_trip_reset_and_codes(self):
        breaker = CircuitBreaker(clock=FakeClock())
        assert breaker.state_code == 0
        breaker.trip()
        assert breaker.state == STATE_OPEN
        assert breaker.state_code == 2
        breaker.reset()
        assert breaker.state_code == 0

    def test_transition_callback(self):
        seen = []
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock(),
                                 on_transition=lambda o, n: seen.append((o, n)))
        breaker.record_failure()
        breaker.reset()
        assert seen == [(STATE_CLOSED, STATE_OPEN),
                        (STATE_OPEN, STATE_CLOSED)]


class TestWarningAggregator:
    def test_rate_limits_per_key(self):
        clock = FakeClock()
        agg = WarningAggregator(interval_s=5.0, clock=clock)
        assert agg.should_emit("a") == (True, 0)
        assert agg.should_emit("a") == (False, 0)
        assert agg.should_emit("a") == (False, 0)
        assert agg.should_emit("b") == (True, 0)  # keys independent
        clock.advance(5.0)
        emit, suppressed = agg.should_emit("a")
        assert emit and suppressed == 2
        assert agg.emitted["a"] == 2
        assert agg.suppressed.get("a", 0) == 0  # reported, so cleared


class TestDeadlinePropagation:
    def test_client_refuses_spent_budget_before_send(self, serving):
        _service, server = serving()
        client = PlanServiceClient(server.address, timeout_s=10.0)
        try:
            with pytest.raises(DeadlineExceededError):
                client.call("ping", deadline_s=time.monotonic() - 1.0)
        finally:
            client.close()

    def test_server_sheds_expired_requests_before_dispatch(self, serving):
        service, server = serving()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10.0)
        sock.connect(parse_address(server.address)[1])
        try:
            # Budget of 0 remaining seconds: expired the moment the
            # server re-anchors it — deterministically shed.
            send_frame(sock, request_envelope(1, "ping",
                                              deadline_s=0.0))
            response = recv_frame(sock)
        finally:
            sock.close()
        assert response["ok"] is False
        assert response["error"]["kind"] == "deadline"
        assert service.stats.shed == 1

    def test_worker_sheds_expired_queued_work(self, make_planner):
        service = PlanService(num_workers=1)
        service.register_job("vlm", planner=make_planner())
        try:
            ticket = service.submit("vlm", controlled_batch([1, 2]),
                                    deadline_s=time.monotonic() - 1.0)
            with pytest.raises(DeadlineExceededError, match="shed"):
                ticket.result(timeout=10.0)
            assert service.stats.shed == 1
            assert service.stats.searches == 0
        finally:
            service.close()

    def test_shed_count_reaches_the_metrics_registry(self, serving):
        service, server = serving()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10.0)
        sock.connect(parse_address(server.address)[1])
        try:
            send_frame(sock, request_envelope(1, "ping",
                                              deadline_s=-1.0))
            recv_frame(sock)
        finally:
            sock.close()
        client = PlanServiceClient(server.address, timeout_s=10.0)
        try:
            snapshot = client.call("metrics")["metrics"]
        finally:
            client.close()
        assert sample_value(snapshot, "repro_service_shed_total") == \
            service.stats.shed == 1


class TestStaleResponseId:
    def test_stale_id_is_rejected_not_misdelivered(self, tmp_path):
        """A response carrying some other request's id on a reused
        connection must surface as a protocol error (satellite of the
        retry work: a retried send must never consume a late response
        to an earlier attempt as its own)."""
        path = str(tmp_path / "stale.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(1)

        def serve_once():
            conn, _ = listener.accept()
            with conn:
                request = recv_frame(conn)
                send_frame(conn, {
                    "format": WIRE_FORMAT, "version": WIRE_VERSION,
                    "id": request["id"] + 17,  # someone else's answer
                    "ok": True, "result": {"pong": True},
                })

        thread = threading.Thread(target=serve_once, daemon=True)
        thread.start()
        client = PlanServiceClient(f"uds://{path}", timeout_s=10.0)
        try:
            with pytest.raises(ProtocolError, match="stale response id"):
                client.call("ping")
        finally:
            client.close()
            thread.join(timeout=5.0)
            listener.close()


class TestLauncherAccounting:
    def _config(self, tmp_path, **kwargs):
        return FleetConfig(
            models=["VLM-S"], shards=1,
            cache_dir=str(tmp_path / "cache"),
            runtime_dir=str(tmp_path / "run"),
            budget=4, workers=1, queue=16, cache_size=16,
            **kwargs,
        )

    def test_one_crash_counts_once_and_stop_is_idempotent(self, tmp_path):
        fleet = PlanFleet(self._config(tmp_path, max_restarts=2)).start()
        try:
            fleet.kill_shard(0)
            shard = fleet.shards[0]
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if shard.restarts == 1 and shard.alive:
                    break
                time.sleep(0.2)
            assert shard.restarts == 1 and shard.alive
            # Let the monitor re-observe the same dead process a few
            # more polls: the crash must stay charged exactly once.
            time.sleep(PlanFleet.POLL_S * 3)
            assert shard.restarts == 1
        finally:
            results = []
            threads = [
                threading.Thread(
                    target=lambda: results.append(fleet.stop()))
                for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
        assert len(results) == 2
        assert results[0] == results[1]  # second call got cached codes
        assert fleet.stop() == results[0]
        assert fleet.alive_count() == 0


class TestDegradedMode:
    DEAD = ["uds:///tmp/repro-resilience-no-such-shard.sock"]
    FAST_RETRY = RetryPolicy(max_attempts=2, base_s=0.0, cap_s=0.0)

    def make_client(self, planner, **kwargs):
        kwargs.setdefault("retry_policy", self.FAST_RETRY)
        kwargs.setdefault("degraded", True)
        return FleetClient(self.DEAD, "vlm", 0, [], planner=planner,
                           timeout_s=5.0, attempt_timeout_s=5.0,
                           **kwargs)

    def test_fallback_plan_is_makespan_identical(self, make_planner):
        batch = controlled_batch([1, 2])
        want = make_planner().plan_iteration(batch).total_ms

        client = self.make_client(make_planner())
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", FleetFailoverWarning)
                result, report = client.plan_batch(batch)
        finally:
            client.close()
        assert report["degraded"] is True
        assert report["outcome"] == "degraded"
        assert result.total_ms == want
        assert client.degraded_plans == 1
        digest, address = client.routes[-1]
        assert address == "local"
        degraded_events = [e for e in client.audit
                           if e["kind"] == "degraded"]
        assert degraded_events and \
            degraded_events[0]["reason"] == "retries-exhausted"
        assert degraded_events[0]["signature"] == digest

    def test_without_degraded_mode_the_error_surfaces(self, make_planner):
        client = self.make_client(make_planner(), degraded=False)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", FleetFailoverWarning)
                with pytest.raises(OSError):
                    client.plan_batch(controlled_batch([1, 2]))
        finally:
            client.close()

    def test_open_breakers_short_circuit_to_local(self, make_planner):
        client = self.make_client(make_planner())
        try:
            client.trip_breakers()
            assert set(client.breaker_states().values()) == {STATE_OPEN}
            result, report = client.plan_batch(controlled_batch([1, 2]))
            assert report["degraded"] is True
            # Refused locally by the breaker: no dial, no retry burned.
            assert client.retries == 0
            reasons = [e["reason"] for e in client.audit
                       if e["kind"] == "degraded"]
            assert reasons == ["breakers-open"]

            snapshot = client.metrics_snapshot()
            code = sample_value(snapshot, "repro_fleet_breaker_state",
                                {"address": self.DEAD[0]})
            assert code == 2
            assert check_scrape([], client_metrics=snapshot) == []

            client.reset_breakers()
            assert set(client.breaker_states().values()) == \
                {STATE_CLOSED}
        finally:
            client.close()

    def test_spent_deadline_is_typed_not_degraded(self, make_planner):
        client = self.make_client(make_planner(), deadline_s=0.0)
        try:
            with pytest.raises(DeadlineExceededError):
                client.plan_batch(controlled_batch([1, 2]))
            assert client.deadline_failures == 1
            assert client.degraded_plans == 0
        finally:
            client.close()

    def test_stats_surface_resilience_counters(self, make_planner):
        client = self.make_client(make_planner())
        try:
            client.trip_breakers()
            client.plan_batch(controlled_batch([1, 2]))
            stats = client.stats()
        finally:
            client.close()
        assert stats["degraded_plans"] == 1
        assert stats["retries"] == 0
        assert stats["breakers"][self.DEAD[0]] == STATE_OPEN


class TestClientMetricsChecks:
    def test_illegal_breaker_code_is_flagged(self):
        snapshot = {"metrics": [{
            "name": "repro_fleet_breaker_state", "type": "gauge",
            "help": "", "label_names": ["address"],
            "series": [{"labels": {"address": "a"}, "value": 7}],
        }]}
        problems = check_scrape([], client_metrics=snapshot)
        assert any("illegal code" in p for p in problems)

    def test_negative_counter_is_flagged(self):
        snapshot = {"metrics": [{
            "name": "repro_fleet_client_retries_total",
            "type": "counter", "help": "", "label_names": ["address"],
            "series": [{"labels": {"address": "a"}, "value": -1}],
        }]}
        problems = check_scrape([], client_metrics=snapshot)
        assert any("negative" in p for p in problems)
