"""Failure-injection and robustness tests.

Schedules are planned against the analytic model but executed on noisy
hardware: these tests inject stragglers, latency noise and perturbed
inputs, asserting the system degrades gracefully (no deadlocks, bounded
slowdown, invariants preserved).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.interleaver import interleave_stages
from repro.core.schedule import validate_schedule
from repro.sim.pipeline import simulate_pipeline


class TestStragglerInjection:
    def test_single_straggler_bounded_impact(self, vlm_graph, small_cluster,
                                             parallel2, cost_model):
        """One stage running 5x slower delays the iteration by at most
        that stage's extra latency (no cascade amplification)."""
        inter = interleave_stages(vlm_graph, small_cluster, parallel2,
                                  cost_model)
        base = simulate_pipeline(vlm_graph, inter.order, small_cluster,
                                 parallel2, cost_model)
        victim = max(range(len(vlm_graph.stages)),
                     key=lambda u: vlm_graph.latency_ms(vlm_graph.stages[u]))
        extra = vlm_graph.latency_ms(vlm_graph.stages[victim]) * 4.0

        slowed = simulate_pipeline(
            vlm_graph, inter.order, small_cluster, parallel2, cost_model,
            jitter=lambda uid, ms: ms * 5.0 if uid == victim else ms,
        )
        assert slowed.total_ms >= base.total_ms
        assert slowed.total_ms <= base.total_ms + extra + 1e-6

    def test_slow_rank_stretches_iteration(self, vlm_graph, small_cluster,
                                           parallel2, cost_model):
        inter = interleave_stages(vlm_graph, small_cluster, parallel2,
                                  cost_model)
        base = simulate_pipeline(vlm_graph, inter.order, small_cluster,
                                 parallel2, cost_model)
        slow_rank = 1

        def rank_jitter(uid, ms):
            if vlm_graph.stages[uid].rank == slow_rank:
                return ms * 1.5
            return ms

        slowed = simulate_pipeline(vlm_graph, inter.order, small_cluster,
                                   parallel2, cost_model, jitter=rank_jitter)
        assert base.total_ms < slowed.total_ms <= base.total_ms * 1.5 + 1e-6

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), sigma=st.floats(0.01, 0.20))
    def test_property_noise_never_deadlocks(self, seed, sigma):
        """Arbitrary multiplicative noise cannot deadlock a valid order
        (timing changes never invalidate a dependency-consistent
        schedule)."""
        from tests.test_pipeline_sim import two_rank_graph
        from repro.cluster.devices import GPU_H800_80G
        from repro.cluster.topology import ClusterSpec, ParallelConfig

        graph = two_rank_graph()
        cluster = ClusterSpec(gpu=GPU_H800_80G, gpus_per_node=4)
        parallel = ParallelConfig(dp=1, tp=1, pp=2)
        rng = np.random.default_rng(seed)
        result = simulate_pipeline(
            graph, [[0, 3], [1, 2]], cluster, parallel,
            jitter=lambda uid, ms: float(ms * rng.lognormal(0.0, sigma)),
        )
        assert result.total_ms > 0

    def test_noisy_execution_preserves_order_semantics(
        self, vlm_graph, small_cluster, parallel2, cost_model
    ):
        """Under noise, stage start times still respect dependencies."""
        inter = interleave_stages(vlm_graph, small_cluster, parallel2,
                                  cost_model)
        rng = np.random.default_rng(5)
        noisy = simulate_pipeline(
            vlm_graph, inter.order, small_cluster, parallel2, cost_model,
            jitter=lambda uid, ms: float(ms * rng.lognormal(0.0, 0.1)),
        )
        for stage in vlm_graph.stages:
            for dep in stage.deps:
                assert noisy.start_ms[stage.uid] >= noisy.end_ms[dep] - 1e-6


class TestDegenerateWorkloads:
    def test_single_microbatch(self, vlm_setup, small_cluster, parallel2,
                               cost_model):
        from repro.core.graphbuilder import build_iteration_graph
        from repro.core.searcher import ScheduleSearcher
        from repro.data.workload import vlm_workload

        arch, plan, partitioner = vlm_setup
        batch = vlm_workload(1, seed=0).next_batch()
        graph = build_iteration_graph(arch, plan, batch, small_cluster,
                                      parallel2, cost_model,
                                      partitioner=partitioner)
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=5, seed=0)
        result = searcher.search(graph)
        assert validate_schedule(graph, result.schedule.order) == []

    def test_text_only_iteration(self, vlm_setup, small_cluster, parallel2,
                                 cost_model):
        from repro.core.graphbuilder import build_iteration_graph
        from repro.core.searcher import ScheduleSearcher
        from repro.data.batching import GlobalBatch
        from repro.data.packing import controlled_vlm_microbatch

        arch, plan, partitioner = vlm_setup
        batch = GlobalBatch([controlled_vlm_microbatch(i, 0)
                             for i in range(3)])
        graph = build_iteration_graph(arch, plan, batch, small_cluster,
                                      parallel2, cost_model,
                                      partitioner=partitioner)
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=5, seed=0)
        result = searcher.search(graph)
        assert validate_schedule(graph, result.schedule.order) == []


class TestCliTune:
    def test_tune_command(self, capsys):
        code = main(["tune", "VLM-S", "--microbatches", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MFU" in out and "layout candidates" in out
