"""Tests for execution-plan compilation and the runtime engine."""

import pytest

from repro.core.interleaver import interleave_stages
from repro.runtime.actions import Action, ActionKind, ExecutionPlan
from repro.runtime.compiler import compile_schedule
from repro.runtime.engine import PlanDeadlockError, execute_plan
from repro.sim.pipeline import simulate_pipeline
from tests.test_pipeline_sim import two_rank_graph


class TestCompiler:
    def test_every_stage_compiled(self, vlm_graph, small_cluster, parallel2,
                                  cost_model):
        inter = interleave_stages(vlm_graph, small_cluster, parallel2, cost_model)
        plan = compile_schedule(vlm_graph, inter.order, small_cluster,
                                parallel2, cost_model)
        compute_uids = {
            a.stage_uid
            for rank in range(plan.num_ranks)
            for a in plan.compute_actions(rank)
        }
        assert compute_uids == {s.uid for s in vlm_graph.stages}

    def test_sends_match_receives(self, vlm_graph, small_cluster, parallel2,
                                  cost_model):
        inter = interleave_stages(vlm_graph, small_cluster, parallel2, cost_model)
        plan = compile_schedule(vlm_graph, inter.order, small_cluster,
                                parallel2, cost_model)
        sends, receives = set(), set()
        for actions in plan.actions_per_rank:
            for a in actions:
                if a.kind is ActionKind.ISEND:
                    sends.add(a.tag)
                elif a.kind is ActionKind.IRECV:
                    receives.add(a.tag)
        assert sends == receives

    def test_strategy_labels_propagate(self, vlm_graph, small_cluster,
                                       parallel2, cost_model):
        from repro.core.memopt import generate_candidates

        generate_candidates(vlm_graph)
        vlm_graph.select_most_memory_efficient()
        inter = interleave_stages(vlm_graph, small_cluster, parallel2, cost_model)
        plan = compile_schedule(vlm_graph, inter.order, small_cluster,
                                parallel2, cost_model)
        labels = {
            a.strategy
            for rank in range(plan.num_ranks)
            for a in plan.compute_actions(rank)
        }
        assert labels  # carries the chosen strategies
        assert all(label for label in labels)

    def test_describe_readable(self, small_cluster, parallel2, cost_model):
        graph = two_rank_graph()
        plan = compile_schedule(graph, [[0, 3], [1, 2]], small_cluster,
                                parallel2, cost_model)
        text = plan.describe()
        assert "fw_stage" in text and "rank0" in text


class TestEngine:
    def test_matches_simulator_on_tiny_graph(self, small_cluster, parallel2,
                                             cost_model):
        graph = two_rank_graph(fw=10.0, bw=20.0)
        order = [[0, 3], [1, 2]]
        sim = simulate_pipeline(graph, order, small_cluster, parallel2,
                                cost_model)
        plan = compile_schedule(graph, order, small_cluster, parallel2,
                                cost_model)
        engine = execute_plan(plan)
        assert engine.total_ms == pytest.approx(sim.total_ms)

    def test_matches_simulator_on_vlm_graph(self, vlm_graph, small_cluster,
                                            parallel2, cost_model):
        """Deployment invariant: compiled-plan replay == planner timeline."""
        inter = interleave_stages(vlm_graph, small_cluster, parallel2, cost_model)
        sim = simulate_pipeline(vlm_graph, inter.order, small_cluster,
                                parallel2, cost_model)
        plan = compile_schedule(vlm_graph, inter.order, small_cluster,
                                parallel2, cost_model)
        engine = execute_plan(plan)
        assert engine.total_ms == pytest.approx(sim.total_ms, rel=1e-9)
        for uid in range(len(vlm_graph.stages)):
            assert engine.stage_end_ms[uid] == pytest.approx(
                sim.end_ms[uid], rel=1e-9
            )

    def test_message_count_matches_cross_rank_deps(self, vlm_graph,
                                                   small_cluster, parallel2,
                                                   cost_model):
        inter = interleave_stages(vlm_graph, small_cluster, parallel2, cost_model)
        plan = compile_schedule(vlm_graph, inter.order, small_cluster,
                                parallel2, cost_model)
        engine = execute_plan(plan)
        expected = sum(
            1
            for s in vlm_graph.stages
            for d in s.deps
            if vlm_graph.stages[d].rank != s.rank
        )
        assert engine.messages == expected

    def test_deadlock_detected(self):
        # wait_irecv for a message that is never sent.
        plan = ExecutionPlan(actions_per_rank=[
            [Action(kind=ActionKind.WAIT_IRECV, tag=(0, 1), peer=1)],
            [],
        ])
        with pytest.raises(PlanDeadlockError):
            execute_plan(plan)

    def test_deadlock_message_names_stuck_ranks(self):
        # Two ranks each waiting on a message the other never sends.
        plan = ExecutionPlan(actions_per_rank=[
            [Action(kind=ActionKind.WAIT_IRECV, tag=(0, 1), peer=1)],
            [Action(kind=ActionKind.WAIT_IRECV, tag=(1, 0), peer=0)],
        ])
        with pytest.raises(PlanDeadlockError) as excinfo:
            execute_plan(plan)
        message = str(excinfo.value)
        assert "rank 0 -> tag (0, 1)" in message
        assert "rank 1 -> tag (1, 0)" in message

    def test_wait_on_unposted_send_detected(self):
        plan = ExecutionPlan(actions_per_rank=[
            [Action(kind=ActionKind.WAIT_ISEND, tag=(0, 1))],
        ])
        with pytest.raises(PlanDeadlockError):
            execute_plan(plan)

    def test_empty_plan(self):
        result = execute_plan(ExecutionPlan(actions_per_rank=[[], []]))
        assert result.total_ms == 0.0
