"""Tests for schedule objects and invariant validation."""

import pytest

from repro.core.schedule import PipelineSchedule, validate_schedule
from tests.test_pipeline_sim import two_rank_graph


class TestValidateSchedule:
    def test_valid_order_passes(self):
        graph = two_rank_graph()
        assert validate_schedule(graph, [[0, 3], [1, 2]]) == []

    def test_duplicate_detected(self):
        graph = two_rank_graph()
        violations = validate_schedule(graph, [[0, 0, 3], [1, 2]])
        assert any("twice" in v for v in violations)

    def test_missing_detected(self):
        graph = two_rank_graph()
        violations = validate_schedule(graph, [[0], [1, 2]])
        assert any("covers" in v for v in violations)

    def test_wrong_rank_detected(self):
        graph = two_rank_graph()
        violations = validate_schedule(graph, [[0, 3, 2], [1]])
        assert any("listed" in v for v in violations)

    def test_unknown_stage_detected(self):
        graph = two_rank_graph()
        violations = validate_schedule(graph, [[0, 3, 9], [1, 2]])
        assert any("unknown" in v for v in violations)

    def test_cycle_detected(self):
        graph = two_rank_graph()
        violations = validate_schedule(graph, [[3, 0], [1, 2]])
        assert any("cycle" in v for v in violations)

    def test_memory_check(self, small_cluster, parallel2):
        graph = two_rank_graph(act=500.0, limit=100.0)
        violations = validate_schedule(
            graph, [[0, 3], [1, 2]], check_memory=True,
            cluster=small_cluster, parallel=parallel2,
        )
        assert any("memory" in v for v in violations)

    def test_memory_check_requires_env(self):
        graph = two_rank_graph()
        with pytest.raises(ValueError, match="cluster"):
            validate_schedule(graph, [[0, 3], [1, 2]], check_memory=True)


class TestPipelineSchedule:
    def test_total_before_simulate_raises(self):
        graph = two_rank_graph()
        schedule = PipelineSchedule(graph=graph, order=[[0, 3], [1, 2]])
        with pytest.raises(ValueError, match="simulated"):
            _ = schedule.total_ms

    def test_simulate_caches(self, small_cluster, parallel2):
        graph = two_rank_graph(fw=10.0, bw=20.0)
        schedule = PipelineSchedule(graph=graph, order=[[0, 3], [1, 2]])
        result = schedule.simulate(small_cluster, parallel2)
        assert schedule.predicted is result
        assert schedule.total_ms == pytest.approx(60.0)
