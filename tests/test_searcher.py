"""Tests for the three-phase schedule searcher (section 5)."""

import pytest

from repro.core.schedule import validate_schedule
from repro.core.searcher import ScheduleSearcher


class TestSearch:
    def test_produces_valid_schedule(self, vlm_graph, small_cluster, parallel2,
                                     cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=15, seed=0)
        result = searcher.search(vlm_graph)
        assert validate_schedule(vlm_graph, result.schedule.order) == []
        assert result.total_ms > 0
        assert result.schedule.predicted is not None

    def test_memory_respected(self, vlm_graph, small_cluster, parallel2,
                              cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=15, seed=0)
        result = searcher.search(vlm_graph)
        assert result.schedule.predicted.memory_exceeded == []

    def test_search_beats_or_matches_natural(self, vlm_graph, small_cluster,
                                             parallel2, cost_model):
        natural = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                   strategy="natural", seed=0)
        nat_ms = natural.search(vlm_graph).total_ms
        vlm_graph.reset_strategies()
        mcts = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                budget_evaluations=40, seed=0)
        mcts_ms = mcts.search(vlm_graph).total_ms
        assert mcts_ms <= nat_ms * 1.05  # never meaningfully worse

    def test_memopt_reduces_time(self, vlm_graph, small_cluster, parallel2,
                                 cost_model):
        no_opt = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                  strategy="natural", enable_memopt=False)
        base_ms = no_opt.search(vlm_graph).total_ms
        vlm_graph.reset_strategies()
        with_opt = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    strategy="natural", enable_memopt=True)
        opt_ms = with_opt.search(vlm_graph).total_ms
        assert opt_ms <= base_ms + 1e-6

    def test_invert_finds_worse_schedule(self, vlm_graph, small_cluster,
                                         parallel2, cost_model):
        best = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                budget_evaluations=30, seed=0)
        best_ms = best.search(vlm_graph).total_ms
        vlm_graph.reset_strategies()
        worst = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                 budget_evaluations=30, seed=0, invert=True,
                                 enable_memopt=False)
        worst_result = worst.search(vlm_graph)
        assert worst_result.reorder.best_ms >= best_ms

    @pytest.mark.parametrize("strategy", ["mcts", "dfs", "random", "natural"])
    def test_all_strategies_valid(self, strategy, vlm_graph, small_cluster,
                                  parallel2, cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    strategy=strategy, budget_evaluations=10,
                                    seed=1)
        result = searcher.search(vlm_graph)
        assert validate_schedule(vlm_graph, result.schedule.order) == []

    def test_unknown_strategy_rejected(self, small_cluster, parallel2):
        with pytest.raises(ValueError):
            ScheduleSearcher(small_cluster, parallel2, strategy="simulated")

    def test_trace_available_for_fig11(self, vlm_graph, small_cluster,
                                       parallel2, cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=20, seed=0)
        result = searcher.search(vlm_graph)
        assert result.trace  # (elapsed_s, evals, best_ms) checkpoints
        times = [t[2] for t in result.trace]
        assert times == sorted(times, reverse=True)

    def test_deterministic_given_seed(self, vlm_setup, small_cluster, parallel2,
                                      cost_model):
        from repro.core.graphbuilder import build_iteration_graph
        from repro.data.workload import vlm_workload

        arch, plan, partitioner = vlm_setup

        def run():
            batch = vlm_workload(2, seed=7).next_batch()
            graph = build_iteration_graph(
                arch, plan, batch, small_cluster, parallel2, cost_model,
                partitioner=partitioner,
            )
            searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                        budget_evaluations=15, seed=42)
            return searcher.search(graph).total_ms

        assert run() == pytest.approx(run())

    def test_t2v_search(self, t2v_graph, small_cluster, parallel2, cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=10, seed=0)
        result = searcher.search(t2v_graph)
        assert validate_schedule(t2v_graph, result.schedule.order) == []

    def test_natural_path_reports_zero_evaluations(self, vlm_graph,
                                                   small_cluster, parallel2,
                                                   cost_model):
        """No ordering evaluation runs without a reordering search."""
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    strategy="natural", seed=0)
        result = searcher.search(vlm_graph)
        assert result.reorder is None
        assert result.evaluations == 0

    def test_search_reports_true_evaluation_count(self, vlm_graph,
                                                  small_cluster, parallel2,
                                                  cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=12, seed=0)
        result = searcher.search(vlm_graph)
        assert result.evaluations == result.reorder.evaluations
        assert result.evaluations >= 12

    def test_result_carries_winning_ordering(self, vlm_graph, small_cluster,
                                             parallel2, cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=10, seed=0)
        result = searcher.search(vlm_graph)
        assert sorted(result.ordering, key=repr) == sorted(
            vlm_graph.groups().keys(), key=repr
        )
        assert result.ordering == result.reorder.ordering


class TestWarmStartedSearch:
    def test_seed_ordering_marks_result(self, vlm_graph, small_cluster,
                                        parallel2, cost_model):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=10, seed=0)
        cold = searcher.search(vlm_graph)
        assert not cold.warm_started
        vlm_graph.reset_strategies()
        warm = searcher.search(vlm_graph, seed_ordering=cold.ordering)
        assert warm.warm_started
        assert validate_schedule(vlm_graph, warm.schedule.order) == []

    def test_warm_start_never_worse_than_seed(self, vlm_graph, small_cluster,
                                              parallel2, cost_model):
        cold = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                budget_evaluations=40, seed=0)
        best = cold.search(vlm_graph)
        vlm_graph.reset_strategies()
        # A tiny warm budget must still recover the seeded incumbent.
        warm = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                budget_evaluations=2, seed=1)
        result = warm.search(vlm_graph, seed_ordering=best.ordering)
        assert result.reorder.best_ms <= best.reorder.best_ms * (1 + 1e-9)

    def test_fully_stale_seed_falls_back_to_cold(self, vlm_graph,
                                                 small_cluster, parallel2,
                                                 cost_model):
        from repro.core.stages import Direction, GroupKey

        stale = [GroupKey(999, "nope", Direction.FORWARD)]
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=8, seed=0)
        result = searcher.search(vlm_graph, seed_ordering=stale)
        assert not result.warm_started
        assert validate_schedule(vlm_graph, result.schedule.order) == []

    def test_partially_stale_seed_is_aligned(self, vlm_graph, small_cluster,
                                             parallel2, cost_model):
        """Stale group keys are dropped, missing ones appended."""
        from repro.core.stages import Direction, GroupKey

        groups = list(vlm_graph.groups().keys())
        seed = [groups[0], GroupKey(999, "nope", Direction.FORWARD)]
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=8, seed=0)
        result = searcher.search(vlm_graph, seed_ordering=seed)
        assert result.warm_started
        assert validate_schedule(vlm_graph, result.schedule.order) == []
