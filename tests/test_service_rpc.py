"""Cross-process plan serving: wire protocol, robustness, drain/reap.

Covers the socket layer (src/repro/service/rpc.py + client.py):

* frame codec + envelope validation (malformed frames, oversized
  payloads, version mismatches yield clean protocol errors, never a
  wedged server thread);
* cross-process plans are makespan-identical to in-process plans;
* coalescing across connections (the multi-process DP regime);
* a client disconnecting between submit and result never hangs the
  leader's local waiters, and its registry entry is reaped;
* server close drains in-flight remote requests deterministically;
* concurrent clients hammering one server yield clean overload errors.
"""

import json
import socket
import threading
import time

import pytest

from repro.core.planner import OnlinePlanner
from repro.core.searcher import ScheduleSearcher
from repro.core.signature import SIGNATURE_VERSION
from repro.data.batching import GlobalBatch
from repro.data.packing import controlled_vlm_microbatch
from repro.data.workload import vlm_workload
from repro.service import (
    OUTCOME_COALESCED,
    OUTCOME_SEARCH,
    PlanService,
    PlanServiceClient,
    PlanServiceServer,
    ProtocolError,
    RecalibrationPolicy,
    RemotePlanClient,
    RemotePlanError,
    ServiceOverloadError,
    SignatureMismatchError,
    drive_remote_replicas,
    observed_execution,
)
from repro.service.rpc import (
    HEADER,
    WIRE_FORMAT,
    WIRE_VERSION,
    batch_from_dict,
    batch_to_dict,
    encode_frame,
    parse_address,
    recv_frame,
    request_envelope,
    send_frame,
)
from repro.sim.reference import ReferenceCostModel


def controlled_batch(image_counts, start_index=0):
    return GlobalBatch([
        controlled_vlm_microbatch(index=start_index + i, num_images=count)
        for i, count in enumerate(image_counts)
    ])


@pytest.fixture
def make_planner(tiny_vlm, small_cluster, parallel2, cost_model):
    def factory(budget=8):
        searcher = ScheduleSearcher(small_cluster, parallel2, cost_model,
                                    budget_evaluations=budget, seed=0)
        return OnlinePlanner(tiny_vlm, small_cluster, parallel2, cost_model,
                             searcher=searcher)
    return factory


@pytest.fixture
def serving(tmp_path, make_planner):
    """A served PlanService on a Unix socket; yields (service, server)."""
    def start(num_workers=2, jobs=("vlm",), **service_kwargs):
        service = PlanService(num_workers=num_workers, **service_kwargs)
        for job in jobs:
            service.register_job(job, planner=make_planner())
        server = PlanServiceServer(
            service, uds=str(tmp_path / "plan.sock"),
            result_timeout_s=60.0,
        )
        started.append((service, server))
        return service, server

    started = []
    yield start
    for service, server in started:
        server.close(timeout=10.0)
        service.close()


def raw_socket(server):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(parse_address(server.address)[1])
    return sock


class TestFrameCodec:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        payload = {"format": WIRE_FORMAT, "version": WIRE_VERSION,
                   "id": 7, "method": "ping", "params": {"x": [1, 2, 3]}}
        send_frame(a, payload)
        assert recv_frame(b) == payload
        a.close()
        assert recv_frame(b) is None  # clean EOF
        b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        a.sendall(HEADER.pack(10_000_000))
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_frame(b, max_frame_bytes=1024)
        a.close()
        b.close()

    def test_truncated_frame_rejected(self):
        a, b = socket.socketpair()
        a.sendall(HEADER.pack(100) + b'{"partial":')
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(b)
        b.close()

    def test_non_json_body_rejected(self):
        a, b = socket.socketpair()
        body = b"\xff\xfe not json"
        a.sendall(HEADER.pack(len(body)) + body)
        with pytest.raises(ProtocolError, match="JSON"):
            recv_frame(b)
        a.close()
        b.close()

    def test_non_object_body_rejected(self):
        a, b = socket.socketpair()
        body = json.dumps([1, 2, 3]).encode()
        a.sendall(HEADER.pack(len(body)) + body)
        with pytest.raises(ProtocolError, match="object"):
            recv_frame(b)
        a.close()
        b.close()

    def test_batch_codec_roundtrip(self):
        batch = controlled_batch([4, 8, 2])
        again = batch_from_dict(batch_to_dict(batch))
        assert again.microbatches == batch.microbatches

    def test_batch_codec_rejects_garbage(self):
        with pytest.raises(RemotePlanError):
            batch_from_dict({})
        with pytest.raises(RemotePlanError):
            batch_from_dict({"microbatches": ["nope"]})
        with pytest.raises(RemotePlanError):
            batch_from_dict({"microbatches": [{"bogus_field": 1}]})

    def test_parse_address_forms(self):
        assert parse_address(("localhost", 9000)) == \
            ("tcp", ("localhost", 9000))
        assert parse_address("tcp://h:1") == ("tcp", ("h", 1))
        assert parse_address("uds:///tmp/x.sock") == ("uds", "/tmp/x.sock")
        assert parse_address("127.0.0.1:8080") == \
            ("tcp", ("127.0.0.1", 8080))
        assert parse_address("/tmp/plan.sock") == ("uds", "/tmp/plan.sock")


class TestServerRobustness:
    """Malformed input must produce clean errors — never a wedged thread."""

    def assert_alive(self, server):
        with PlanServiceClient(server.address) as probe:
            assert probe.ping()["format"] == WIRE_FORMAT

    def test_garbage_bytes_close_connection_cleanly(self, serving):
        _service, server = serving()
        sock = raw_socket(server)
        # The garbage parses as a large length prefix; shutting down the
        # write side makes the server hit EOF mid-frame right away.
        sock.sendall(b"\x00\x00garbage garbage garbage")
        sock.shutdown(socket.SHUT_WR)
        # Server answers with a protocol error (or just closes) and the
        # connection dies; either way the next client is served fine.
        try:
            response = recv_frame(sock)
            assert response is None or response["error"]["kind"] == "protocol"
        except (ProtocolError, OSError):
            pass
        sock.close()
        self.assert_alive(server)
        assert server.remote.snapshot()["protocol_errors"] >= 1

    def test_oversized_frame_reported_and_closed(self, serving):
        _service, server = serving()
        sock = raw_socket(server)
        sock.sendall(HEADER.pack(2**31 - 1))
        response = recv_frame(sock)
        assert response is not None and not response["ok"]
        assert response["error"]["kind"] == "protocol"
        assert recv_frame(sock) is None  # server closed after violation
        sock.close()
        self.assert_alive(server)
        assert server.remote.snapshot()["protocol_errors"] >= 1

    def test_wrong_envelope_version_rejected(self, serving):
        _service, server = serving()
        sock = raw_socket(server)
        bogus = request_envelope(1, "ping")
        bogus["version"] = 999
        send_frame(sock, bogus)
        response = recv_frame(sock)
        assert not response["ok"]
        assert response["error"]["kind"] == "protocol"
        assert "version" in response["error"]["message"]
        sock.close()
        self.assert_alive(server)

    def test_unknown_method_keeps_connection(self, serving):
        _service, server = serving()
        sock = raw_socket(server)
        send_frame(sock, request_envelope(1, "frobnicate"))
        response = recv_frame(sock)
        assert not response["ok"]
        # 'unsupported', not 'protocol': neither side kills a healthy
        # connection over a method the server merely doesn't serve.
        assert response["error"]["kind"] == "unsupported"
        assert "unknown method" in response["error"]["message"]
        # Connection still usable: a ping on the same socket succeeds.
        send_frame(sock, request_envelope(2, "ping"))
        assert recv_frame(sock)["ok"]
        sock.close()

    def test_non_string_method_is_clean_protocol_error(self, serving):
        """A well-framed envelope with an unhashable method must not
        kill the handler thread with a TypeError."""
        _service, server = serving()
        sock = raw_socket(server)
        send_frame(sock, request_envelope(1, ["not", "a", "string"]))
        response = recv_frame(sock)
        assert not response["ok"]
        assert response["error"]["kind"] == "protocol"
        assert "method must be a string" in response["error"]["message"]
        assert recv_frame(sock) is None  # connection closed after
        sock.close()
        self.assert_alive(server)
        assert server.remote.snapshot()["protocol_errors"] >= 1

    def test_signature_version_mismatch_is_protocol_error(self, serving):
        _service, server = serving(num_workers=1)
        sock = raw_socket(server)
        params = {"job": "vlm", "signature_version": SIGNATURE_VERSION + 1}
        params.update(batch_to_dict(controlled_batch([4])))
        send_frame(sock, request_envelope(1, "submit", params))
        response = recv_frame(sock)
        assert not response["ok"]
        assert response["error"]["kind"] == "protocol"
        assert "signature-version" in response["error"]["message"]
        sock.close()
        self.assert_alive(server)

    def test_unknown_job_is_request_error_not_fatal(self, serving):
        _service, server = serving()
        with PlanServiceClient(server.address) as client:
            with pytest.raises(RemotePlanError, match="unknown job"):
                client.submit_raw("nope", controlled_batch([4]))
            # Same connection still serves valid requests.
            assert client.ping()["jobs"] == ["vlm"]

    def test_submit_without_microbatches_is_request_error(self, serving):
        _service, server = serving()
        with PlanServiceClient(server.address) as client:
            with pytest.raises(RemotePlanError, match="microbatches"):
                client.call("submit", {
                    "job": "vlm",
                    "signature_version": SIGNATURE_VERSION,
                })

    def test_uds_refuses_to_clobber_non_socket_path(self, tmp_path,
                                                    make_planner):
        """Serving on a path that holds a regular file (say, the cache
        file after swapped CLI flags) must fail loudly, not delete it."""
        service = PlanService(num_workers=0)
        service.register_job("vlm", planner=make_planner())
        target = tmp_path / "precious.json"
        target.write_text('{"entries": []}')
        with pytest.raises(ValueError, match="not a socket"):
            PlanServiceServer(service, uds=str(target))
        assert target.read_text() == '{"entries": []}'
        service.close()

    def test_concurrent_hammer_yields_clean_overloads(self, serving,
                                                      make_planner):
        """Many clients, tiny queue, non-blocking submits: every request
        resolves as a plan or a clean ServiceOverloadError; the server
        answers pings afterwards (nothing wedged)."""
        _service, server = serving(num_workers=2, max_queue=2)
        outcomes = []
        lock = threading.Lock()

        def hammer(worker_id):
            client = PlanServiceClient(server.address)
            for i in range(4):
                batch = controlled_batch([2 + (worker_id + i) % 5,
                                          1 + i % 3])
                try:
                    response = client.submit_raw("vlm", batch, block=False)
                    with lock:
                        outcomes.append(("ok", response["report"]["outcome"]))
                except ServiceOverloadError:
                    with lock:
                        outcomes.append(("overload", None))
                except Exception as exc:  # noqa: BLE001
                    with lock:
                        outcomes.append(("unexpected", repr(exc)))
            client.close()

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive(), "hammer thread wedged"
        kinds = {kind for kind, _detail in outcomes}
        assert "unexpected" not in kinds, outcomes
        assert len(outcomes) == 24
        self.assert_alive(server)


class TestCrossProcessPlanning:
    def test_remote_plan_matches_in_process(self, serving, make_planner):
        """The acceptance bar: a remote client's replayed plan has a
        makespan identical to planning in-process."""
        service, server = serving(num_workers=1)
        batch = controlled_batch([4, 8])
        remote = RemotePlanClient(server.address, "vlm", 0, [batch],
                                  planner=make_planner(), timeout_s=60)
        records = remote.run()
        remote.close()
        assert not remote.errors, remote.errors
        solo = make_planner().plan_iteration(batch)
        assert records[0].predicted_ms == pytest.approx(solo.total_ms,
                                                        rel=1e-12)
        assert records[0].outcome == OUTCOME_SEARCH
        assert records[0].signature == solo.signature

    def test_coalescing_across_connections(self, serving, make_planner):
        """Two connections (two would-be processes) submitting the same
        batch share one search — deterministically, via step mode."""
        service, server = serving(num_workers=0)
        batch = controlled_batch([4, 8])
        results = {}

        def drive(tag):
            remote = RemotePlanClient(server.address, "vlm", 0, [batch],
                                      planner=make_planner(), timeout_s=60)
            remote.run()
            results[tag] = remote
            remote.close()

        threads = [threading.Thread(target=drive, args=(t,))
                   for t in ("a", "b")]
        for t in threads:
            t.start()
        # Both submits land before anything is processed; the second
        # coalesces onto the first (one pending leader).
        deadline = time.monotonic() + 30
        while service.queue_depth < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        while (service.stats.submitted < 2
               and time.monotonic() < deadline):
            time.sleep(0.005)
        assert service.queue_depth == 1, "requests did not coalesce"
        service.step()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive()
        outcomes = sorted(results[t].records[0].outcome for t in ("a", "b"))
        assert outcomes == sorted([OUTCOME_SEARCH, OUTCOME_COALESCED])
        makespans = {round(results[t].records[0].predicted_ms, 9)
                     for t in ("a", "b")}
        assert len(makespans) == 1
        assert service.stats.coalesced == 1

    def test_drive_remote_replicas_identical_makespans(self, serving,
                                                       make_planner):
        service, server = serving(num_workers=2)
        batches = vlm_workload(2, seed=0).batches(2)
        report = drive_remote_replicas(
            server.address, {"vlm": batches}, replicas=3,
            planner_factory=lambda job: make_planner(), timeout_s=120,
        )
        assert not report.errors, report.errors
        assert len(report.records) == 6
        for i in range(2):
            makespans = report.makespans("vlm", i)
            assert len(makespans) == 3
            assert max(makespans) - min(makespans) < 1e-9
        assert service.stats.searches == 2  # one per distinct batch
        stats = server.remote.snapshot()
        assert stats["connections_opened"] >= 3

    def test_signature_mismatch_detected(self, serving, make_planner,
                                         tiny_vlm, small_cluster, parallel2):
        """A client planning under a different context (cost model) must
        get a SignatureMismatchError, not a silently wrong replay."""
        from repro.sim.costmodel import CostModel

        service, server = serving(num_workers=1)
        skewed_model = CostModel(compute_efficiency=0.11)
        searcher = ScheduleSearcher(small_cluster, parallel2, skewed_model,
                                    budget_evaluations=8, seed=0)
        skewed = OnlinePlanner(tiny_vlm, small_cluster, parallel2,
                               skewed_model, searcher=searcher)
        remote = RemotePlanClient(server.address, "vlm", 0,
                                  [controlled_batch([4, 8])],
                                  planner=skewed, timeout_s=60)
        with pytest.raises(SignatureMismatchError):
            remote.plan_batch(controlled_batch([4, 8]))
        remote.close()

    def test_signature_mismatch_aborts_stream(self, serving, tiny_vlm,
                                              small_cluster, parallel2):
        """A mismatch is deterministic for the whole stream and costs
        the server one discarded search per attempt — run() must stop
        at the first one, not grind through every batch."""
        from repro.sim.costmodel import CostModel

        service, server = serving(num_workers=1)
        skewed_model = CostModel(compute_efficiency=0.11)
        searcher = ScheduleSearcher(small_cluster, parallel2, skewed_model,
                                    budget_evaluations=8, seed=0)
        skewed = OnlinePlanner(tiny_vlm, small_cluster, parallel2,
                               skewed_model, searcher=searcher)
        batches = [controlled_batch([4, 8]),
                   controlled_batch([2, 6]),
                   controlled_batch([3, 3])]
        remote = RemotePlanClient(server.address, "vlm", 0, batches,
                                  planner=skewed, timeout_s=60)
        remote.run()
        remote.close()
        assert not remote.records
        assert len(remote.errors) == 1  # aborted after the first batch
        assert service.stats.searches == 1  # one wasted search, not 3

    def test_prewarm_and_cache_hit_over_the_wire(self, serving,
                                                 make_planner):
        service, server = serving(num_workers=1)
        batch = controlled_batch([6, 6])
        with PlanServiceClient(server.address) as client:
            assert client.prewarm_raw("vlm", batch)
        deadline = time.monotonic() + 60
        while service.stats.completed < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        remote = RemotePlanClient(server.address, "vlm", 0, [batch],
                                  planner=make_planner(), timeout_s=60)
        records = remote.run()
        remote.close()
        assert not remote.errors
        assert records[0].outcome == "hit"  # prewarmed → replay

    def test_observe_roundtrip_syncs_cost_model(self, serving,
                                                make_planner, cost_model):
        """observe() ships traces in and the calibrated model back out,
        so the remote mirror keeps matching the server's context."""
        service, server = serving(
            num_workers=1,
            recalibration=RecalibrationPolicy(interval=2, window=4,
                                              sweeps=1, holdout=1),
        )
        reference = ReferenceCostModel(seed=7)
        planner = make_planner()
        batches = vlm_workload(2, seed=3).batches(6)
        remote = RemotePlanClient(server.address, "vlm", 0, batches,
                                  planner=planner, timeout_s=120)
        applied = []
        for batch in batches:
            result, _report = remote.plan_batch(batch)
            trace = observed_execution(service, "vlm", result, reference)
            event = remote.observe(trace)
            if event and event.get("applied"):
                applied.append(event)
        remote.close()
        assert applied, "no recalibration applied over the wire"
        # The client's local mirror swapped onto the calibrated model...
        assert planner.cost_model is not cost_model
        # ...and it matches the server's exactly (submits keep working).
        server_model = service.job("vlm").planner.cost_model
        assert planner.cost_model == server_model

    def test_stats_and_save_cache_rpc(self, serving, make_planner,
                                      tmp_path):
        service, server = serving(num_workers=1)
        remote = RemotePlanClient(server.address, "vlm", 0,
                                  [controlled_batch([4, 8])],
                                  planner=make_planner(), timeout_s=60)
        remote.run()
        remote.close()
        with PlanServiceClient(server.address) as client:
            stats = client.stats()
            assert stats["service"]["completed"] == 1
            assert stats["cache"]["entries"] == 1
            assert stats["jobs"] == ["vlm"]
            assert stats["remote"]["connections_opened"] >= 1
            with pytest.raises(RemotePlanError, match="cache path"):
                client.save_cache()  # server started without cache_path
            target = str(tmp_path / "saved_cache.json")
            saved = client.save_cache(target)
            assert saved["entries"] == 1
        with open(target) as f:
            assert len(json.load(f)["entries"]) == 1


class TestDisconnectAndDrain:
    def test_disconnect_mid_search_reaps_and_completes_waiters(
            self, serving, make_planner):
        """Regression: a socket closed between submit and result must
        not hang the coalesced local waiter, and the dead connection's
        registry entry is reaped."""
        service, server = serving(num_workers=0)
        batch = controlled_batch([4, 8])
        planner = make_planner()
        prepared_params = {
            "job": "vlm",
            "signature_version": SIGNATURE_VERSION,
            "block": True,
        }
        prepared_params.update(batch_to_dict(batch))
        sock = raw_socket(server)
        send_frame(sock, request_envelope(1, "submit", prepared_params))
        # Wait until the remote submit is queued (the leader)...
        deadline = time.monotonic() + 30
        while not server.inflight_requests() and time.monotonic() < deadline:
            time.sleep(0.005)
        assert server.inflight_requests(), "remote submit never registered"
        # ...coalesce a local waiter onto it, then kill the client.
        waiter = service.submit("vlm", batch)
        assert service.queue_depth == 1  # waiter coalesced on the leader
        sock.close()
        service.step()
        # The leader's search completed the local waiter.
        result = waiter.result(timeout=30)
        assert result.total_ms > 0
        assert waiter.outcome == OUTCOME_COALESCED
        # The dead connection's entry is reaped and the disconnect
        # counted (handler notices when its response write fails).
        while server.inflight_requests() and time.monotonic() < deadline:
            time.sleep(0.005)
        assert not server.inflight_requests()
        while (server.remote.snapshot()["connections_active"]
               and time.monotonic() < deadline):
            time.sleep(0.005)
        remote_stats = server.remote.snapshot()
        assert remote_stats["disconnects_mid_request"] == 1
        assert remote_stats["connections_active"] == 0

    def test_close_drains_inflight_request(self, serving, make_planner):
        """Server close waits for the in-flight plan and delivers it.

        The search is gated on an event so the request is *provably*
        in flight when close() starts draining — no timing window.
        """
        service, server = serving(num_workers=1)
        job_planner = service.job("vlm").planner
        gate = threading.Event()
        original_search = job_planner.searcher.search

        def gated_search(*args, **kwargs):
            assert gate.wait(30), "close() never released the gate"
            return original_search(*args, **kwargs)

        job_planner.searcher.search = gated_search
        batch = controlled_batch([5, 7])
        outcome = {}

        def drive():
            remote = RemotePlanClient(server.address, "vlm", 0, [batch],
                                      planner=make_planner(), timeout_s=60)
            remote.run()
            outcome["records"] = list(remote.records)
            outcome["errors"] = list(remote.errors)
            remote.close()

        thread = threading.Thread(target=drive)
        thread.start()
        deadline = time.monotonic() + 30
        while not server.inflight_requests() and time.monotonic() < deadline:
            time.sleep(0.005)
        assert server.inflight_requests(), "submit never went in flight"
        closer = threading.Thread(target=server.close,
                                  kwargs={"timeout": 30})
        closer.start()
        gate.set()  # close() is now draining; let the search finish
        closer.join(timeout=60)
        assert not closer.is_alive(), "server.close() wedged"
        thread.join(timeout=60)
        assert not thread.is_alive()
        # The in-flight request was drained, not dropped: the client got
        # its plan — never a half-delivered state.
        assert outcome["records"], outcome
        assert not outcome["errors"]

    def test_clean_client_close_is_not_mid_request(self, serving):
        _service, server = serving()
        client = PlanServiceClient(server.address)
        client.ping()
        client.close()
        deadline = time.monotonic() + 10
        while (server.remote.snapshot()["connections_active"]
               and time.monotonic() < deadline):
            time.sleep(0.005)
        stats = server.remote.snapshot()
        assert stats["disconnects_mid_request"] == 0
        assert stats["connections_closed"] == 1
