"""Tests for the reference 'hardware' simulator and calibration (Fig. 13)."""

import pytest

from repro.cluster.devices import GPU_H800_80G
from repro.sim.calibration import calibrate_cost_model
from repro.sim.costmodel import CostModel
from repro.sim.reference import ReferenceCostModel, draw_hidden_factors
from repro.metrics import mfu, pflops_per_iteration, speedup, throughput_tokens_per_s
from tests.conftest import TINY_LM, TINY_VIT


class TestReferenceModel:
    def test_hidden_factors_deterministic(self):
        assert draw_hidden_factors(3) == draw_hidden_factors(3)
        assert draw_hidden_factors(3) != draw_hidden_factors(4)

    def test_hidden_truth_slower_than_default(self):
        """The hidden hardware is less efficient than the optimistic
        defaults, creating the pre-calibration gap of Fig. 13."""
        ref = ReferenceCostModel(seed=7)
        default = CostModel()
        assert ref.compute_efficiency < default.compute_efficiency

    def test_jitter_centred_on_base(self):
        ref = ReferenceCostModel(seed=1, noise_sigma=0.02)
        values = [ref.jitter(0, 100.0) for _ in range(500)]
        mean = sum(values) / len(values)
        assert mean == pytest.approx(100.0, rel=0.02)

    def test_zero_noise(self):
        ref = ReferenceCostModel(seed=1, noise_sigma=0.0)
        assert ref.jitter(0, 50.0) == 50.0

    def test_measurement_close_to_truth(self):
        ref = ReferenceCostModel(seed=2, noise_sigma=0.01)
        truth = ref.stage_cost(GPU_H800_80G, TINY_LM, 1, 4, 2048).forward_ms
        measured = ref.measure_gemm_ms(GPU_H800_80G, TINY_LM, 4, 2048)
        assert measured == pytest.approx(truth, rel=0.1)


class TestCalibration:
    def test_calibration_reduces_error(self):
        base = CostModel()
        ref = ReferenceCostModel(seed=7, noise_sigma=0.01)
        report = calibrate_cost_model(
            base, ref, GPU_H800_80G, [TINY_VIT, TINY_LM], tp=1
        )
        assert report.mean_abs_error_after <= report.mean_abs_error_before
        assert report.samples > 0

    def test_calibrated_accuracy_high(self):
        """Post-calibration accuracy should reach the ~97% the paper
        reports (we require >= 90% to stay robust to the noise draw)."""
        base = CostModel()
        ref = ReferenceCostModel(seed=7, noise_sigma=0.01)
        report = calibrate_cost_model(
            base, ref, GPU_H800_80G, [TINY_VIT, TINY_LM], tp=1
        )
        assert report.accuracy_after >= 0.90

    def test_calibrated_model_is_new_instance(self):
        base = CostModel()
        ref = ReferenceCostModel(seed=9)
        report = calibrate_cost_model(base, ref, GPU_H800_80G, [TINY_LM])
        assert report.calibrated is not base


class TestMetrics:
    def test_mfu_basic(self):
        from repro.cluster.topology import ParallelConfig

        parallel = ParallelConfig(dp=1, tp=2, pp=2)
        # 4 GPUs x 989 TFLOPs x 1 s at 50% -> 1.978e15 FLOPs.
        value = mfu(1.978e15, 1000.0, GPU_H800_80G, parallel)
        assert value == pytest.approx(0.5)

    def test_mfu_rejects_zero_time(self):
        from repro.cluster.topology import ParallelConfig

        with pytest.raises(ValueError):
            mfu(1e12, 0.0, GPU_H800_80G, ParallelConfig(1, 1, 1))

    def test_speedup(self):
        assert speedup(200.0, 100.0) == pytest.approx(1.0)  # 100% faster
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_throughput(self):
        assert throughput_tokens_per_s(8192, 1000.0) == pytest.approx(8192.0)

    def test_pflops(self):
        assert pflops_per_iteration(12.8e15) == pytest.approx(12.8)
