"""Tests for the solver substrate: MCKP, branch-and-bound, MILP backend."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.bnb import (
    McIntervalProblem,
    greedy_warm_start,
    solve_mc_interval,
)
from repro.solver.mckp import mckp_min_latency
from repro.solver.scipy_backend import HAVE_MILP, solve_mc_interval_milp


def brute_force_mckp(latencies, memories, limit):
    best = None
    for combo in itertools.product(*[range(len(g)) for g in latencies]):
        mem = sum(memories[g][j] for g, j in enumerate(combo))
        if mem > limit:
            continue
        lat = sum(latencies[g][j] for g, j in enumerate(combo))
        if best is None or lat < best[1]:
            best = (list(combo), lat)
    return best


class TestMckp:
    def test_trivial(self):
        sel, lat = mckp_min_latency([[5.0, 1.0]], [[0.0, 10.0]], 20.0)
        assert sel == [1] and lat == 1.0

    def test_budget_forces_slow_option(self):
        sel, lat = mckp_min_latency([[5.0, 1.0]], [[0.0, 10.0]], 5.0)
        assert sel == [0] and lat == 5.0

    def test_empty_groups(self):
        assert mckp_min_latency([], [], 10.0) == ([], 0.0)

    def test_infeasible(self):
        assert mckp_min_latency([[1.0]], [[10.0]], 5.0) is None

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mckp_min_latency([[1.0]], [], 5.0)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_property_matches_brute_force(self, data):
        rng_seed = data.draw(st.integers(0, 10_000))
        rng = np.random.default_rng(rng_seed)
        groups = data.draw(st.integers(1, 4))
        latencies, memories = [], []
        for _ in range(groups):
            k = int(rng.integers(1, 4))
            latencies.append([float(x) for x in rng.uniform(0, 10, k)])
            memories.append([float(x) for x in rng.integers(0, 8, k)])
        limit = float(rng.integers(0, 20))
        expected = brute_force_mckp(latencies, memories, limit)
        got = mckp_min_latency(latencies, memories, limit, resolution=4096)
        if expected is None:
            assert got is None
        else:
            assert got is not None
            # Equal optimal latency (selection may differ on ties).
            assert got[1] == pytest.approx(expected[1], abs=1e-9)


def random_interval_problem(seed, pairs=5, cands=3):
    rng = np.random.default_rng(seed)
    latencies = [[float(x) for x in np.sort(rng.uniform(0, 5, cands))[::-1]]
                 for _ in range(pairs)]
    memories = [[float(x) for x in np.sort(rng.uniform(1, 10, cands))]
                for _ in range(pairs)]
    # Swap so that low latency costs more memory (pareto-like).
    latencies = [list(reversed(l)) for l in latencies]
    memories = [list(reversed(m)) for m in memories]
    num_cliques = int(rng.integers(1, 4))
    cliques = []
    for _ in range(num_cliques):
        size = int(rng.integers(1, pairs + 1))
        cliques.append(sorted(rng.choice(pairs, size=size, replace=False).tolist()))
    min_need = max(
        sum(min(memories[i]) for i in clique) for clique in cliques
    )
    limit = float(min_need + rng.uniform(0, 10))
    return McIntervalProblem(latencies, memories, cliques, limit)


class TestBranchAndBound:
    def test_no_constraint_picks_fastest(self):
        problem = McIntervalProblem(
            latencies=[[5.0, 1.0], [4.0, 2.0]],
            memories=[[1.0, 2.0], [1.0, 2.0]],
            cliques=[[0, 1]],
            limit=100.0,
        )
        solution = solve_mc_interval(problem, rel_gap=0.0)
        assert solution.selection == [1, 1]
        assert solution.latency == 3.0
        assert solution.optimal

    def test_tight_constraint(self):
        problem = McIntervalProblem(
            latencies=[[5.0, 1.0], [4.0, 2.0]],
            memories=[[1.0, 10.0], [1.0, 10.0]],
            cliques=[[0, 1]],
            limit=11.0,  # only one pair may take the fast option
        )
        solution = solve_mc_interval(problem, rel_gap=0.0)
        assert sorted(solution.selection) == [0, 1]
        assert solution.latency == pytest.approx(min(5.0 + 2.0, 1.0 + 4.0))

    def test_infeasible_raises(self):
        problem = McIntervalProblem(
            latencies=[[1.0]], memories=[[10.0]], cliques=[[0]], limit=5.0
        )
        with pytest.raises(ValueError, match="infeasible"):
            solve_mc_interval(problem)

    def test_warm_start_feasible(self):
        problem = random_interval_problem(5)
        warm = greedy_warm_start(problem)
        assert warm is not None
        assert problem.is_feasible(warm)

    def test_gap_terminates_early(self):
        problem = random_interval_problem(11, pairs=8, cands=4)
        loose = solve_mc_interval(problem, rel_gap=0.5)
        tight = solve_mc_interval(problem, rel_gap=0.0)
        assert tight.latency <= loose.latency + 1e-9
        assert loose.gap <= 0.5 + 1e-9

    @pytest.mark.skipif(not HAVE_MILP, reason="scipy.optimize.milp unavailable")
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_property_matches_milp(self, seed):
        problem = random_interval_problem(seed, pairs=4, cands=3)
        ours = solve_mc_interval(problem, rel_gap=0.0)
        milp = solve_mc_interval_milp(problem)
        assert ours.latency == pytest.approx(milp.latency, rel=1e-6, abs=1e-6)

    def test_empty_problem(self):
        problem = McIntervalProblem([], [], [], 10.0)
        solution = solve_mc_interval(problem)
        assert solution.selection == []
        assert solution.latency == 0.0
