"""Tests for the trace & telemetry subsystem.

Correctness invariants (ISSUE 2 acceptance):

* exported spans are non-overlapping per rank,
* per-rank busy + bubble time sums to the makespan exactly,
* critical-path length equals the simulator makespan on known schedules.
"""

import json

import pytest

from repro.core.interleaver import interleave_stages
from repro.metrics import bubble_ratio, bubble_time_ms
from repro.runtime.compiler import compile_schedule
from repro.runtime.engine import execute_plan
from repro.sim.pipeline import simulate_pipeline
from repro.trace import (
    Span,
    Trace,
    TraceCollector,
    TraceMeta,
    annotate_stalls,
    critical_path,
    decompose_bubbles,
    diff_traces,
    to_chrome,
    trace_from_engine,
    trace_from_sim,
    validate_chrome_trace,
)


@pytest.fixture
def sim_setup(vlm_graph, small_cluster, parallel2, cost_model):
    inter = interleave_stages(vlm_graph, small_cluster, parallel2, cost_model)
    sim = simulate_pipeline(vlm_graph, inter.order, small_cluster, parallel2,
                            cost_model)
    return vlm_graph, inter, sim, small_cluster, parallel2, cost_model


@pytest.fixture
def vlm_trace(sim_setup):
    graph, _inter, sim, cluster, parallel, cm = sim_setup
    return trace_from_sim(graph, sim, cluster, parallel, cm, label="vlm")


class TestSchema:
    def test_span_duration(self):
        span = Span(rank=0, kind="compute", name="x", start_ms=1.0,
                    end_ms=3.5)
        assert span.duration_ms == 2.5

    def test_every_stage_has_a_compute_span(self, sim_setup, vlm_trace):
        graph = sim_setup[0]
        computes = vlm_trace.compute_spans()
        assert len(computes) == len(graph.stages)
        assert {s.uid for s in computes} == {s.uid for s in graph.stages}

    def test_compute_spans_carry_attribution(self, vlm_trace):
        for span in vlm_trace.compute_spans():
            assert span.module
            assert span.microbatch >= 0
            assert span.direction in ("fw", "bw")
            assert span.attrs["layers"] > 0
            assert span.attrs["instances"] > 0
            assert span.attrs["seq"] > 0

    def test_validate_clean_trace(self, vlm_trace):
        assert vlm_trace.validate() == []

    def test_validate_catches_overlap(self):
        meta = TraceMeta(num_ranks=1, total_ms=10.0)
        spans = [
            Span(rank=0, kind="compute", name="a", start_ms=0.0, end_ms=5.0),
            Span(rank=0, kind="compute", name="b", start_ms=4.0, end_ms=8.0),
        ]
        problems = Trace(meta, spans).validate()
        assert any("overlaps" in p for p in problems)

    def test_validate_catches_bad_kind_and_negative_duration(self):
        meta = TraceMeta(num_ranks=1, total_ms=10.0)
        spans = [
            Span(rank=0, kind="gpu", name="a", start_ms=0.0, end_ms=1.0),
            Span(rank=0, kind="compute", name="b", start_ms=5.0, end_ms=4.0),
            Span(rank=3, kind="compute", name="c", start_ms=0.0, end_ms=1.0),
        ]
        problems = Trace(meta, spans).validate()
        assert len(problems) >= 3

    def test_comm_spans_may_overlap_compute(self, vlm_trace):
        # Comm spans exist (cross-rank P2P) and don't trip validation.
        assert vlm_trace.spans_of_kind("comm")
        assert vlm_trace.validate() == []

    def test_native_round_trip(self, vlm_trace, tmp_path):
        path = vlm_trace.save(str(tmp_path / "t.json"))
        loaded = Trace.load(path)
        assert loaded.meta.label == vlm_trace.meta.label
        assert loaded.total_ms == vlm_trace.total_ms
        assert len(loaded) == len(vlm_trace)
        for a, b in zip(vlm_trace.spans, loaded.spans):
            assert a == b

    def test_from_dict_rejects_other_formats(self):
        with pytest.raises(Exception):
            Trace.from_dict({"format": "something-else"})


class TestCollectorWiring:
    def test_simulator_emits_into_collector(self, sim_setup):
        graph, inter, sim, cluster, parallel, cm = sim_setup
        collector = TraceCollector(label="live", num_ranks=graph.num_ranks)
        live = simulate_pipeline(graph, inter.order, cluster, parallel, cm,
                                 collector=collector)
        trace = collector.build()
        assert live.total_ms == sim.total_ms
        assert trace.total_ms == sim.total_ms
        # The live collection and the post-hoc builder agree span for span.
        posthoc = trace_from_sim(graph, sim, cluster, parallel, cm,
                                 stalls=False)
        assert len(trace) == len(posthoc)
        live_uids = {(s.uid, s.start_ms, s.end_ms)
                     for s in trace.compute_spans()}
        post_uids = {(s.uid, s.start_ms, s.end_ms)
                     for s in posthoc.compute_spans()}
        assert live_uids == post_uids

    def test_engine_emits_into_collector(self, sim_setup):
        graph, inter, sim, cluster, parallel, cm = sim_setup
        plan = compile_schedule(graph, inter.order, cluster, parallel, cm)
        collector = TraceCollector(source="engine")
        result = execute_plan(plan, collector=collector)
        trace = collector.build()
        assert trace.meta.num_ranks == graph.num_ranks
        assert len(trace.compute_spans()) == len(graph.stages)
        assert trace.total_ms == pytest.approx(result.total_ms)

    def test_engine_trace_agrees_with_sim(self, sim_setup):
        graph, inter, sim, cluster, parallel, cm = sim_setup
        plan = compile_schedule(graph, inter.order, cluster, parallel, cm)
        engine_trace = trace_from_engine(plan, graph=graph)
        sim_trace = trace_from_sim(graph, sim, cluster, parallel, cm)
        assert engine_trace.total_ms == pytest.approx(sim_trace.total_ms,
                                                      rel=1e-9)
        sim_by_uid = sim_trace.span_by_uid()
        for span in engine_trace.compute_spans():
            ref = sim_by_uid[span.uid]
            assert span.end_ms == pytest.approx(ref.end_ms, rel=1e-9)
            # Enrichment filled graph attribution onto engine spans.
            assert span.module == ref.module
            assert span.microbatch == ref.microbatch
            assert span.deps == ref.deps

    def test_engine_trace_validates(self, sim_setup):
        graph, inter, _sim, cluster, parallel, cm = sim_setup
        plan = compile_schedule(graph, inter.order, cluster, parallel, cm)
        trace = trace_from_engine(plan, graph=graph)
        assert trace.validate() == []


class TestBubbleDecomposition:
    def test_busy_plus_bubble_equals_makespan_exactly(self, vlm_trace):
        report = decompose_bubbles(vlm_trace)
        for bubbles in report.per_rank:
            assert bubbles.busy_ms + bubbles.idle_ms == pytest.approx(
                vlm_trace.total_ms, abs=1e-6)

    def test_matches_simulator_bubble_ratio(self, sim_setup, vlm_trace):
        sim = sim_setup[2]
        report = decompose_bubbles(vlm_trace)
        assert report.bubble_ratio == pytest.approx(sim.bubble_ratio,
                                                    abs=1e-12)

    def test_metrics_bubble_ratio_from_event_stream(self, sim_setup,
                                                    vlm_trace):
        sim = sim_setup[2]
        assert bubble_ratio(vlm_trace) == pytest.approx(sim.bubble_ratio,
                                                        abs=1e-12)
        ranks = vlm_trace.num_ranks
        expected_idle = sim.bubble_ratio * sim.total_ms * ranks
        assert bubble_time_ms(vlm_trace) == pytest.approx(expected_idle,
                                                          rel=1e-9)

    def test_deterministic_sim_has_no_straggler_time(self, vlm_trace):
        report = decompose_bubbles(vlm_trace)
        assert report.totals()["straggler"] == 0.0

    def test_warmup_matches_first_span_start(self, vlm_trace):
        report = decompose_bubbles(vlm_trace)
        for rank in range(vlm_trace.num_ranks):
            spans = vlm_trace.compute_spans(rank)
            first = min(s.start_ms for s in spans)
            assert report.per_rank[rank].warmup_ms == pytest.approx(first)

    def test_stall_spans_partition_idle(self, vlm_trace):
        report = decompose_bubbles(vlm_trace)
        stalls = vlm_trace.spans_of_kind("stall")
        assert stalls, "trace_from_sim annotates stalls by default"
        total_stall = sum(s.duration_ms for s in stalls)
        assert total_stall == pytest.approx(report.idle_ms, abs=1e-6)
        for span in stalls:
            assert span.name in ("warmup", "dependency", "straggler",
                                 "cooldown")
        assert vlm_trace.validate() == []

    def test_annotation_is_idempotent(self, vlm_trace):
        before = len(vlm_trace.spans_of_kind("stall"))
        annotate_stalls(vlm_trace)
        assert len(vlm_trace.spans_of_kind("stall")) == before


class TestCriticalPath:
    def test_length_equals_makespan(self, vlm_trace):
        path = critical_path(vlm_trace)
        assert path.length_ms == pytest.approx(vlm_trace.total_ms, rel=1e-12)

    def test_path_is_tight_on_deterministic_sim(self, vlm_trace):
        path = critical_path(vlm_trace)
        assert path.slack_ms == pytest.approx(0.0, abs=1e-9)
        assert path.compute_ms + path.comm_ms == pytest.approx(
            vlm_trace.total_ms, abs=1e-6)

    def test_t2v_graph_too(self, t2v_graph, small_cluster, parallel2,
                           cost_model):
        inter = interleave_stages(t2v_graph, small_cluster, parallel2,
                                  cost_model)
        sim = simulate_pipeline(t2v_graph, inter.order, small_cluster,
                                parallel2, cost_model)
        trace = trace_from_sim(t2v_graph, sim, small_cluster, parallel2,
                               cost_model)
        path = critical_path(trace)
        assert path.length_ms == pytest.approx(sim.total_ms, rel=1e-12)
        assert path.slack_ms == pytest.approx(0.0, abs=1e-9)

    def test_path_stages_are_consecutive_dependencies(self, vlm_trace):
        by_uid = vlm_trace.span_by_uid()
        path = critical_path(vlm_trace)
        assert len(path.uids) >= 2
        for prev_uid, cur_uid in zip(path.uids, path.uids[1:]):
            cur = by_uid[cur_uid]
            prev = by_uid[prev_uid]
            same_rank = prev.rank == cur.rank
            assert same_rank or prev_uid in cur.deps

    def test_module_breakdown_covers_path(self, vlm_trace):
        path = critical_path(vlm_trace)
        assert sum(path.by_module.values()) == pytest.approx(path.compute_ms)


class TestDiff:
    def test_identical_traces(self, vlm_trace):
        diff = diff_traces(vlm_trace, vlm_trace)
        assert diff.identical
        assert diff.matched == len(vlm_trace.compute_spans())
        assert diff.makespan_delta_ms == 0.0

    def test_detects_schedule_change(self, sim_setup):
        graph, inter, sim, cluster, parallel, cm = sim_setup
        base = trace_from_sim(graph, sim, cluster, parallel, cm)
        # Natural per-rank order (uid ascending) is a different schedule.
        order = [sorted(s.uid for s in graph.stages_on_rank(r))
                 for r in range(graph.num_ranks)]
        other_sim = simulate_pipeline(graph, order, cluster, parallel, cm)
        other = trace_from_sim(graph, other_sim, cluster, parallel, cm)
        diff = diff_traces(base, other)
        assert diff.matched == len(graph.stages)
        assert diff.only_a == diff.only_b == 0
        if other_sim.total_ms != sim.total_ms:
            assert not diff.identical
            assert "start" in diff.describe()

    def test_describe_mentions_makespans(self, vlm_trace):
        text = diff_traces(vlm_trace, vlm_trace).describe()
        assert "makespan" in text and "identical" in text


class TestChromeExport:
    def test_export_is_schema_valid(self, vlm_trace):
        payload = to_chrome(vlm_trace)
        assert validate_chrome_trace(payload) == []

    def test_comm_slices_on_separate_threads(self, vlm_trace):
        payload = to_chrome(vlm_trace)
        ranks = vlm_trace.num_ranks
        comm = [e for e in payload["traceEvents"] if e.get("cat") == "comm"]
        assert comm
        assert all(e["tid"] >= ranks for e in comm)

    def test_stall_slices_carry_cause(self, vlm_trace):
        payload = to_chrome(vlm_trace)
        stalls = [e for e in payload["traceEvents"]
                  if e.get("cat") == "stall"]
        assert stalls
        assert all("cause" in e["args"] for e in stalls)

    def test_json_serialisable(self, vlm_trace):
        json.dumps(to_chrome(vlm_trace))

    def test_validator_rejects_missing_events(self):
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "Z", "name": "x", "pid": 0}]}) != []


class TestFlowEvents:
    def test_every_comm_span_emits_a_flow_pair(self, vlm_trace):
        payload = to_chrome(vlm_trace)
        comm = [s for s in vlm_trace.spans if s.kind == "comm"]
        starts = [e for e in payload["traceEvents"] if e.get("ph") == "s"]
        finishes = [e for e in payload["traceEvents"] if e.get("ph") == "f"]
        assert comm
        assert len(starts) == len(comm)
        assert len(finishes) == len(comm)
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}

    def test_flows_link_producer_and_consumer_tracks(self, vlm_trace):
        payload = to_chrome(vlm_trace)
        by_id = {}
        for event in payload["traceEvents"]:
            if event.get("ph") in ("s", "f"):
                by_id.setdefault(event["id"], {})[event["ph"]] = event
        comm_by_time = {
            (round(s.start_ms * 1e3, 6), round(s.end_ms * 1e3, 6)):
            s for s in vlm_trace.spans if s.kind == "comm"
        }
        assert by_id
        for pair in by_id.values():
            start, finish = pair["s"], pair["f"]
            span = comm_by_time[(round(start["ts"], 6),
                                 round(finish["ts"], 6))]
            # Start on the producer's compute track, finish on the
            # consumer's — both *compute* tids (< num_ranks).
            assert start["tid"] == span.attrs["src_rank"]
            assert finish["tid"] == span.rank
            assert start["tid"] < vlm_trace.num_ranks
            assert finish["tid"] < vlm_trace.num_ranks
            assert finish.get("bp") == "e"

    def test_flows_optional_and_schema_valid(self, vlm_trace):
        with_flows = to_chrome(vlm_trace)
        without = to_chrome(vlm_trace, flows=False)
        assert validate_chrome_trace(with_flows) == []
        assert validate_chrome_trace(without) == []
        assert not any(e.get("ph") in ("s", "f")
                       for e in without["traceEvents"])

    def test_validator_flags_unmatched_flow(self):
        payload = {"traceEvents": [
            {"name": "t", "ph": "M", "pid": 0, "args": {}},
            {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 0.0,
             "dur": 1.0, "args": {}},
            {"name": "flow", "ph": "s", "pid": 0, "tid": 0, "ts": 0.5,
             "id": 1},
        ]}
        problems = validate_chrome_trace(payload)
        assert any("unmatched" in p for p in problems)

    def test_validator_flags_flow_without_id(self):
        payload = {"traceEvents": [
            {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 0.0,
             "dur": 1.0, "args": {}},
            {"name": "flow", "ph": "f", "pid": 0, "tid": 0, "ts": 0.5},
        ]}
        problems = validate_chrome_trace(payload)
        assert any("missing id" in p for p in problems)


class TestTraceRing:
    def _trace(self, label, total=10.0):
        meta = TraceMeta(label=label, num_ranks=1, total_ms=total)
        spans = [Span(rank=0, kind="compute", name=label, start_ms=0.0,
                      end_ms=total, uid=0)]
        return Trace(meta, spans)

    def test_retains_last_k(self):
        from repro.trace import TraceRing

        ring = TraceRing(capacity=3)
        for i in range(5):
            ring.append(self._trace(f"iter{i}"))
        assert len(ring) == 3
        assert ring.appended == 5
        assert [t.meta.label for t in ring.snapshot()] == \
            ["iter2", "iter3", "iter4"]
        assert ring.latest().meta.label == "iter4"
        ring.clear()
        assert len(ring) == 0 and ring.latest() is None

    def test_capacity_validated(self):
        from repro.trace import TraceRing

        with pytest.raises(ValueError):
            TraceRing(capacity=0)

    def test_concurrent_appends_keep_count(self):
        import threading

        from repro.trace import TraceRing

        ring = TraceRing(capacity=4)
        trace = self._trace("x")

        def append_many():
            for _ in range(50):
                ring.append(trace)

        threads = [threading.Thread(target=append_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert ring.appended == 200
        assert len(ring) == 4


class TestMergedExport:
    def test_merge_offsets_and_labels_iterations(self, sim_setup):
        from repro.trace import merge_traces

        graph, _inter, sim, cluster, parallel, cm = sim_setup
        one = trace_from_sim(graph, sim, cluster, parallel, cm, label="a")
        merged = merge_traces([one, one, one], label="steady")
        assert merged.meta.extra["iterations"] == 3
        assert merged.total_ms == pytest.approx(3 * one.total_ms)
        assert len(merged) == 3 * len(one)
        starts = merged.meta.extra["iteration_starts_ms"]
        assert starts == pytest.approx([0.0, one.total_ms, 2 * one.total_ms])
        for span in merged.spans:
            i = span.attrs["iteration"]
            assert starts[i] - 1e-9 <= span.start_ms
            assert span.end_ms <= starts[i] + one.total_ms + 1e-9
        # Still schema-valid: per-rank occupancy does not overlap across
        # the iteration boundaries, and nothing leaks past the makespan.
        assert merged.validate() == []
        # Sources untouched.
        assert one.total_ms == pytest.approx(merged.total_ms / 3)
        assert all("iteration" not in s.attrs for s in one.spans)

    def test_merge_with_gap(self, sim_setup):
        from repro.trace import merge_traces

        graph, _inter, sim, cluster, parallel, cm = sim_setup
        one = trace_from_sim(graph, sim, cluster, parallel, cm, label="a")
        merged = merge_traces([one, one], gap_ms=5.0)
        assert merged.total_ms == pytest.approx(2 * one.total_ms + 5.0)

    def test_merge_empty_rejected(self):
        from repro.trace import merge_traces

        with pytest.raises(ValueError):
            merge_traces([])

    def test_merged_chrome_export_valid(self, sim_setup):
        from repro.trace import merge_traces

        graph, _inter, sim, cluster, parallel, cm = sim_setup
        one = trace_from_sim(graph, sim, cluster, parallel, cm, label="a")
        merged = merge_traces([one, one])
        assert validate_chrome_trace(to_chrome(merged)) == []


class TestRecalibration:
    def test_samples_have_workload_attribution(self, vlm_trace):
        from repro.trace.recalibrate import samples_from_traces

        samples = samples_from_traces([vlm_trace])
        assert samples
        fw_spans = [s for s in vlm_trace.compute_spans()
                    if s.direction == "fw"]
        assert len(samples) == len(fw_spans)

    def test_fit_improves_on_reference_trace(self, vlm_setup, small_cluster,
                                             parallel2):
        from repro.core.graphbuilder import build_iteration_graph
        from repro.data.workload import vlm_workload
        from repro.sim.costmodel import CostModel
        from repro.sim.reference import ReferenceCostModel
        from repro.trace.recalibrate import recalibrate_from_trace

        arch, plan, partitioner = vlm_setup
        reference = ReferenceCostModel(seed=11, noise_sigma=0.01)
        batch = vlm_workload(2, seed=3).next_batch()
        graph = build_iteration_graph(arch, plan, batch, small_cluster,
                                      parallel2, reference,
                                      partitioner=partitioner)
        order = [sorted(s.uid for s in graph.stages_on_rank(r))
                 for r in range(graph.num_ranks)]
        sim = simulate_pipeline(graph, order, small_cluster, parallel2,
                                reference, jitter=reference.jitter)
        trace = trace_from_sim(graph, sim, small_cluster, parallel2,
                               reference)
        report = recalibrate_from_trace(
            trace, CostModel(), small_cluster.gpu,
            {b.name: b.spec for b in arch.bindings}, tp=parallel2.tp)
        assert report.improved
        assert report.mean_abs_error_after < 0.05

    def test_rejects_traces_without_samples(self, small_cluster):
        from repro.sim.costmodel import CostModel
        from repro.trace.recalibrate import recalibrate_from_traces

        empty = Trace(TraceMeta(num_ranks=1, total_ms=1.0), [])
        with pytest.raises(ValueError):
            recalibrate_from_traces([empty], CostModel(), small_cluster.gpu,
                                    {})


class TestMalformedPayloads:
    """Untrusted native trace files surface exactly TraceValidationError."""

    def test_non_object_payload(self):
        from repro.trace import TraceValidationError

        with pytest.raises(TraceValidationError):
            Trace.from_dict(["a", "list"])

    def test_unknown_meta_key(self):
        from repro.trace import TraceValidationError

        with pytest.raises(TraceValidationError):
            Trace.from_dict({"format": "repro-trace", "version": 1,
                             "meta": {"nope": 1}, "spans": {}})

    def test_ragged_span_columns(self):
        from repro.trace import TraceValidationError

        with pytest.raises(TraceValidationError):
            Trace.from_dict({"format": "repro-trace", "version": 1,
                             "meta": {},
                             "spans": {"rank": [0, 1], "kind": ["compute"],
                                       "name": ["a", "b"],
                                       "start_ms": [0.0, 1.0],
                                       "end_ms": [1.0]}})

    def test_measure_reference_traces_helper(self, vlm_setup, small_cluster,
                                             parallel2):
        from repro.data.workload import vlm_workload
        from repro.sim.reference import ReferenceCostModel
        from repro.trace import measure_reference_traces

        arch, plan, partitioner = vlm_setup
        reference = ReferenceCostModel(seed=5)
        traces = measure_reference_traces(
            arch, plan, vlm_workload(2, seed=2).batches(2), small_cluster,
            parallel2, reference, partitioner=partitioner)
        assert len(traces) == 2
        for trace in traces:
            assert trace.validate() == []
            assert trace.compute_spans()
