"""Tests for schedule visualisation and the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.interleaver import interleave_stages
from repro.core.visualize import (
    ascii_timeline,
    chrome_trace,
    memory_sparkline,
    save_chrome_trace,
)
from repro.sim.pipeline import simulate_pipeline


@pytest.fixture
def simulated(vlm_graph, small_cluster, parallel2, cost_model):
    inter = interleave_stages(vlm_graph, small_cluster, parallel2, cost_model)
    sim = simulate_pipeline(vlm_graph, inter.order, small_cluster, parallel2,
                            cost_model)
    return vlm_graph, sim


class TestAsciiTimeline:
    def test_one_row_per_rank(self, simulated):
        graph, sim = simulated
        text = ascii_timeline(graph, sim, width=60, legend=False)
        assert len(text.splitlines()) == graph.num_ranks

    def test_width_respected(self, simulated):
        graph, sim = simulated
        text = ascii_timeline(graph, sim, width=50, legend=False)
        for line in text.splitlines():
            assert len(line) == len("PP0 |") + 50 + 1

    def test_legend_has_stats(self, simulated):
        graph, sim = simulated
        text = ascii_timeline(graph, sim, width=50)
        assert "bubble" in text
        assert "s total" in text

    def test_forward_and_backward_glyphs(self, simulated):
        graph, sim = simulated
        text = ascii_timeline(graph, sim, width=120, legend=False)
        assert any(c.isdigit() for c in text)  # forwards
        assert any(c.isalpha() and c.islower() and c not in "Pp"
                   for line in text.splitlines()
                   for c in line.split("|")[1])  # backwards


class TestChromeTrace:
    def test_every_stage_becomes_slice(self, simulated):
        graph, sim = simulated
        trace = chrome_trace(graph, sim)
        slices = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert len(slices) == len(graph.stages)

    def test_slices_carry_metadata(self, simulated):
        graph, sim = simulated
        trace = chrome_trace(graph, sim)
        one = next(e for e in trace["traceEvents"] if e.get("ph") == "X")
        assert {"microbatch", "module", "strategy", "uid"} <= set(one["args"])

    def test_save_round_trips(self, simulated, tmp_path):
        graph, sim = simulated
        path = save_chrome_trace(graph, sim, str(tmp_path / "t.json"))
        loaded = json.load(open(path))
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["traceEvents"]

    def test_durations_match_simulation(self, simulated):
        graph, sim = simulated
        trace = chrome_trace(graph, sim)
        for event in trace["traceEvents"]:
            if event.get("ph") != "X":
                continue
            uid = event["args"]["uid"]
            expected = (sim.end_ms[uid] - sim.start_ms[uid]) * 1e3
            assert event["dur"] == pytest.approx(expected)


class TestSparkline:
    def test_length_and_peak(self, simulated):
        graph, sim = simulated
        line = memory_sparkline(sim, 0, width=40)
        assert "peak" in line
        assert len(line.split("  peak")[0]) == 40


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["plan", "VLM-S", "--microbatches", "2"])
        assert args.command == "plan" and args.model == "VLM-S"

    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "vit-5b" in out and "VLM-S" in out

    def test_plan_command_smoke(self, capsys):
        code = main(["plan", "VLM-S", "--microbatches", "2",
                     "--iterations", "1", "--budget", "4", "--diagram",
                     "--width", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MFU" in out and "PP0" in out

    def test_plan_reports_cache_stats(self, capsys):
        code = main(["plan", "VLM-S", "--microbatches", "2",
                     "--iterations", "2", "--budget", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan cache:" in out
        assert "cold search" in out

    def test_plan_cache_can_be_disabled(self, capsys):
        code = main(["plan", "VLM-S", "--microbatches", "2",
                     "--iterations", "1", "--budget", "4",
                     "--no-plan-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan cache:" not in out

    def test_trace_export_command(self, tmp_path, capsys):
        out_file = str(tmp_path / "trace.json")
        code = main(["trace", "export", "VLM-S", "--microbatches", "2",
                     "--budget", "4", "--output", out_file])
        assert code == 0
        assert json.load(open(out_file))["traceEvents"]
        assert main(["trace", "validate", out_file]) == 0

    def test_trace_export_native_roundtrip(self, tmp_path, capsys):
        out_file = str(tmp_path / "trace.native.json")
        code = main(["trace", "export", "VLM-S", "--microbatches", "2",
                     "--budget", "4", "--output", out_file,
                     "--format", "native"])
        assert code == 0
        assert main(["trace", "validate", out_file]) == 0
        code = main(["trace", "analyze", "--input", out_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "critical path" in out and "bubble" in out

    def test_trace_analyze_command(self, capsys):
        code = main(["trace", "analyze", "VLM-S", "--microbatches", "2",
                     "--budget", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bubble ratio (event stream)" in out

    def test_trace_analyze_needs_model_or_input(self, capsys):
        assert main(["trace", "analyze"]) == 2

    def test_trace_compare_replay_is_identical(self, capsys):
        code = main(["trace", "compare", "VLM-S", "--microbatches", "2",
                     "--budget", "4", "--against", "replay"])
        assert code == 0
        assert "identical" in capsys.readouterr().out

    def test_trace_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "Q"}]}')
        assert main(["trace", "validate", str(bad)]) == 1

    def test_plan_cache_file_round_trip(self, tmp_path, capsys):
        cache_file = str(tmp_path / "plans.json")
        args = ["plan", "VLM-S", "--microbatches", "2", "--iterations", "1",
                "--budget", "4", "--cache-file", cache_file]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "cold search" in first
        # A fresh process (planner) reloads the cache and replays.
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "cache hit" in second

    def test_unknown_model_errors(self):
        with pytest.raises(KeyError):
            main(["plan", "VLM-XXL", "--microbatches", "2"])
